package merkle

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"github.com/kit-ces/hayat/internal/faultinject"
	"github.com/kit-ces/hayat/internal/persist"
)

// Failpoints on the audit log's durable-I/O seams.
const (
	fpPersist = "merkle.persist"
	fpReplay  = "merkle.replay"
)

// DefaultSegmentLeaves is how many leaves a segment holds before it is
// sealed and a fresh tree starts. Proofs stay shallow (≤ 8 siblings) and
// a sealed segment's root never changes again.
const DefaultSegmentLeaves = 256

// Ref locates one leaf in the segmented log.
type Ref struct {
	Segment   int `json:"segment"`
	LeafIndex int `json:"leaf_index"`
}

// logRecord is one CRC-framed JSONL line of the on-disk audit log.
// Segment and index are recorded redundantly (they are implied by file
// order) so replay can detect dropped or reordered lines instead of
// silently rebuilding a different tree.
type logRecord struct {
	Segment int    `json:"seg"`
	Index   int    `json:"idx"`
	Key     string `json:"key"`
	Leaf    string `json:"leaf"` // hex leaf hash
}

// Log is the durable audit log: an append-only sequence of (key, leaf
// hash) records partitioned into fixed-size segments, each carrying its
// own Merkle tree. Appends are idempotent by key — the content-addressed
// result cache guarantees one result per key, so replaying a recovered
// job lands on the existing leaf. With an empty path the log is
// memory-only (trees still work, nothing survives a restart).
//
// Durability model: records are appended as CRC-framed lines and fsynced
// when a segment seals (and on Close). A record lost to a crash is
// re-appended the next time its result is served from the cache, so the
// tree self-heals; replay skips corrupt or out-of-sequence lines and
// reports how many.
type Log struct {
	mu        sync.Mutex
	segLeaves int
	segs      []*Tree
	refs      map[string]Ref
	f         *os.File // nil: memory-only
	path      string
	sealed    int // segments already fsynced shut
}

// OpenLog replays (or creates) the audit log at path, returning the log
// and the number of corrupt or out-of-sequence lines skipped. An empty
// path yields a memory-only log.
func OpenLog(path string, segLeaves int) (*Log, int, error) {
	if segLeaves <= 0 {
		segLeaves = DefaultSegmentLeaves
	}
	l := &Log{segLeaves: segLeaves, refs: make(map[string]Ref), path: path}
	if path == "" {
		return l, 0, nil
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, 0, fmt.Errorf("merkle: creating audit dir: %w", err)
		}
	}
	if ferr := faultinject.Hit(fpReplay); ferr != nil {
		return nil, 0, fmt.Errorf("merkle: audit replay: %w", ferr)
	}
	corrupt := 0
	if data, err := os.ReadFile(path); err == nil && len(data) > 0 {
		sc := bufio.NewScanner(bytes.NewReader(data))
		sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			payload, err := persist.DecodeFrameLine(line)
			if err != nil {
				corrupt++
				continue
			}
			var rec logRecord
			if err := json.Unmarshal(payload, &rec); err != nil {
				corrupt++
				continue
			}
			if !l.replayLocked(rec) {
				corrupt++
			}
		}
	} else if err != nil && !os.IsNotExist(err) {
		return nil, 0, fmt.Errorf("merkle: reading audit log: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("merkle: opening audit log: %w", err)
	}
	l.f = f
	l.sealed = len(l.segs)
	if open := l.openSegLocked(); open != nil && open.Len() < l.segLeaves {
		// The trailing segment is still open; everything before it is
		// sealed.
		l.sealed = len(l.segs) - 1
	}
	return l, corrupt, nil
}

// replayLocked rebuilds one record, rejecting anything that does not
// continue the sequence exactly (a gap would silently shift every later
// leaf, making recorded refs lie).
func (l *Log) replayLocked(rec logRecord) bool {
	leaf, err := ParseHash(rec.Leaf)
	if err != nil {
		return false
	}
	if _, dup := l.refs[rec.Key]; dup || rec.Key == "" {
		return false
	}
	want := l.nextRefLocked()
	if rec.Segment != want.Segment || rec.Index != want.LeafIndex {
		return false
	}
	l.appendLeafLocked(rec.Key, leaf)
	return true
}

// nextRefLocked is where the next appended leaf will land.
func (l *Log) nextRefLocked() Ref {
	if open := l.openSegLocked(); open != nil && open.Len() < l.segLeaves {
		return Ref{Segment: len(l.segs) - 1, LeafIndex: open.Len()}
	}
	return Ref{Segment: len(l.segs), LeafIndex: 0}
}

func (l *Log) openSegLocked() *Tree {
	if len(l.segs) == 0 {
		return nil
	}
	return l.segs[len(l.segs)-1]
}

// appendLeafLocked places a leaf at the next slot and records its ref.
func (l *Log) appendLeafLocked(key string, leaf Hash) Ref {
	open := l.openSegLocked()
	if open == nil || open.Len() >= l.segLeaves {
		open = New()
		l.segs = append(l.segs, open)
	}
	idx := open.Append(leaf)
	ref := Ref{Segment: len(l.segs) - 1, LeafIndex: idx}
	l.refs[key] = ref
	return ref
}

// Append records a result leaf under its cache key, returning the leaf's
// position and whether it was newly added (false: the key was already
// audited — byte-identical results make re-appending a no-op). The
// in-memory tree is always updated; a persistence failure is returned so
// the caller can count it, but does not lose the leaf.
func (l *Log) Append(key string, leaf Hash) (Ref, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if ref, ok := l.refs[key]; ok {
		return ref, false, nil
	}
	ref := l.appendLeafLocked(key, leaf)
	sealing := l.segs[ref.Segment].Len() == l.segLeaves
	if err := l.persistLocked(logRecord{
		Segment: ref.Segment,
		Index:   ref.LeafIndex,
		Key:     key,
		Leaf:    hex.EncodeToString(leaf[:]),
	}, sealing); err != nil {
		return ref, true, err
	}
	if sealing && l.f != nil {
		l.sealed = ref.Segment + 1
	}
	return ref, true, nil
}

// persistLocked appends one framed record line, fsyncing when the write
// seals a segment (a sealed root must survive a crash; open-segment
// records are re-derived from the result cache if lost).
func (l *Log) persistLocked(rec logRecord, seal bool) error {
	if l.f == nil {
		return nil
	}
	if ferr := faultinject.Hit(fpPersist); ferr != nil {
		return fmt.Errorf("merkle: audit append: %w", ferr)
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("merkle: audit record: %w", err)
	}
	framed, err := persist.EncodeFrameLine(payload)
	if err != nil {
		return fmt.Errorf("merkle: audit record: %w", err)
	}
	if _, err := l.f.Write(append(framed, '\n')); err != nil {
		return fmt.Errorf("merkle: audit append: %w", err)
	}
	if seal {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("merkle: audit sync: %w", err)
		}
	}
	return nil
}

// Leaf returns the audited leaf hash recorded for key. It is the result
// store's verify-on-read hook: bytes served under key must hash to
// exactly this leaf, so a replica (or a rotted local file) that decodes
// cleanly but differs from what this node audited is still rejected.
func (l *Log) Leaf(key string) (Hash, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ref, ok := l.refs[key]
	if !ok {
		return Hash{}, false
	}
	return l.segs[ref.Segment].leaves[ref.LeafIndex], true
}

// Prove returns the inclusion proof for a key's leaf together with its
// position and the root it verifies against (the segment's current
// root — stable forever once the segment seals).
func (l *Log) Prove(key string) (Proof, Ref, Hash, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ref, ok := l.refs[key]
	if !ok {
		return Proof{}, Ref{}, Hash{}, fmt.Errorf("merkle: no audited leaf for key %s", key)
	}
	tree := l.segs[ref.Segment]
	p, err := tree.Prove(ref.LeafIndex)
	if err != nil {
		return Proof{}, Ref{}, Hash{}, err
	}
	return p, ref, tree.Root(), nil
}

// Stats snapshots the log's shape for /metrics.
type Stats struct {
	Leaves         int `json:"leaves"`
	Segments       int `json:"segments"`
	SealedSegments int `json:"sealed_segments"`
}

// Stats reports leaf and segment counts.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, t := range l.segs {
		n += t.Len()
	}
	return Stats{Leaves: n, Segments: len(l.segs), SealedSegments: l.sealed}
}

// Close fsyncs and closes the audit file. Safe on a memory-only log.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := faultinject.Hit(fpPersist)
	if err == nil {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	if err != nil {
		return fmt.Errorf("merkle: closing audit log: %w", err)
	}
	return nil
}
