package merkle

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/kit-ces/hayat/internal/persist"
)

func key(i int) string { return fmt.Sprintf("key-%04d", i) }

// A restarted log must rebuild the exact same trees: every ref, root and
// proof identical to the pre-restart state, across a segment boundary.
func TestLogReplayRebuildsTrees(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	l, corrupt, err := OpenLog(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	if corrupt != 0 {
		t.Fatalf("fresh log reported %d corrupt lines", corrupt)
	}
	const n = 11 // 2 sealed segments of 4 + an open one of 3
	type want struct {
		ref  Ref
		root Hash
	}
	wants := make([]want, n)
	for i := 0; i < n; i++ {
		ref, added, err := l.Append(key(i), LeafHash(leafData(i)))
		if err != nil || !added {
			t.Fatalf("append %d: added=%v err=%v", i, added, err)
		}
		wants[i].ref = ref
	}
	for i := 0; i < n; i++ {
		_, _, root, err := l.Prove(key(i))
		if err != nil {
			t.Fatal(err)
		}
		wants[i].root = root
	}
	st := l.Stats()
	if st.Leaves != n || st.Segments != 3 || st.SealedSegments != 2 {
		t.Fatalf("stats %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, corrupt, err := OpenLog(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if corrupt != 0 {
		t.Fatalf("replay reported %d corrupt lines", corrupt)
	}
	if st2 := l2.Stats(); st2 != st {
		t.Fatalf("replayed stats %+v, want %+v", st2, st)
	}
	for i := 0; i < n; i++ {
		p, ref, root, err := l2.Prove(key(i))
		if err != nil {
			t.Fatal(err)
		}
		if ref != wants[i].ref {
			t.Fatalf("leaf %d ref %+v, want %+v", i, ref, wants[i].ref)
		}
		if root != wants[i].root {
			t.Fatalf("leaf %d root changed across replay", i)
		}
		if err := Verify(p, leafData(i), root); err != nil {
			t.Fatalf("leaf %d after replay: %v", i, err)
		}
	}
}

// Appending an already-audited key is a no-op returning the original ref.
func TestLogAppendIdempotent(t *testing.T) {
	l, _, err := OpenLog("", 4)
	if err != nil {
		t.Fatal(err)
	}
	ref1, added, err := l.Append("k", LeafHash([]byte("r")))
	if err != nil || !added {
		t.Fatalf("first append: %v %v", added, err)
	}
	ref2, added, err := l.Append("k", LeafHash([]byte("r")))
	if err != nil || added {
		t.Fatalf("second append: added=%v err=%v", added, err)
	}
	if ref1 != ref2 {
		t.Fatalf("refs differ: %+v vs %+v", ref1, ref2)
	}
	if st := l.Stats(); st.Leaves != 1 {
		t.Fatalf("leaves %d, want 1", st.Leaves)
	}
}

// Corrupt and out-of-sequence trailing lines are skipped and counted;
// the intact prefix replays normally.
func TestLogReplaySkipsCorruptLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.log")
	l, _, err := OpenLog(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := l.Append(key(i), LeafHash(leafData(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Append garbage, a bad-CRC frame, and an out-of-sequence (gapped)
	// but well-framed record.
	gap, err := persist.EncodeFrameLine([]byte(`{"seg":0,"idx":9,"key":"gapped","leaf":"` +
		fmt.Sprintf("%064x", 1) + `"}`))
	if err != nil {
		t.Fatal(err)
	}
	framed, err := persist.EncodeFrameLine([]byte(`{"seg":0,"idx":3,"key":"x","leaf":"00"}`))
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(framed, []byte("idx"), []byte("Idx"), 1) // breaks the CRC
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range [][]byte{[]byte("not a frame"), bad, gap} {
		if _, err := f.Write(append(line, '\n')); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	l2, corrupt, err := OpenLog(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if corrupt != 3 {
		t.Fatalf("corrupt count %d, want 3", corrupt)
	}
	if st := l2.Stats(); st.Leaves != 3 {
		t.Fatalf("leaves %d, want 3", st.Leaves)
	}
	if _, _, _, err := l2.Prove("gapped"); err == nil {
		t.Fatal("gapped record was replayed")
	}
	// The log still accepts new appends at the right position.
	ref, _, err := l2.Append(key(3), LeafHash(leafData(3)))
	if err != nil {
		t.Fatal(err)
	}
	if (ref != Ref{Segment: 0, LeafIndex: 3}) {
		t.Fatalf("next append landed at %+v", ref)
	}
}

// A memory-only log (empty path) works but persists nothing.
func TestLogMemoryOnly(t *testing.T) {
	l, _, err := OpenLog("", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append("k", LeafHash([]byte("r"))); err != nil {
		t.Fatal(err)
	}
	p, _, root, err := l.Prove("k")
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, []byte("r"), root); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
