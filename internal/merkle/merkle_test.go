package merkle

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"testing"
)

func leafData(i int) []byte { return []byte(fmt.Sprintf("result-%d", i)) }

// Proofs must round-trip for every leaf of every tree size up to a few
// levels past the segment-boundary cases (powers of two ±1).
func TestProveVerifyAllSizes(t *testing.T) {
	for n := 1; n <= 33; n++ {
		tree := New()
		for i := 0; i < n; i++ {
			tree.Append(LeafHash(leafData(i)))
		}
		root := tree.Root()
		for i := 0; i < n; i++ {
			p, err := tree.Prove(i)
			if err != nil {
				t.Fatalf("n=%d prove(%d): %v", n, i, err)
			}
			if err := Verify(p, leafData(i), root); err != nil {
				t.Fatalf("n=%d leaf %d: %v", n, i, err)
			}
		}
	}
}

// RFC 6962 pins the empty tree's head to SHA-256 of the empty string.
func TestEmptyTreeRoot(t *testing.T) {
	want := sha256.Sum256(nil)
	if got := New().Root(); got != want {
		t.Fatalf("empty root %x, want %x", got, want)
	}
}

// A single-leaf tree's root is the leaf hash and its proof path is empty.
func TestSingleLeaf(t *testing.T) {
	tree := New()
	tree.Append(LeafHash(leafData(0)))
	if tree.Root() != LeafHash(leafData(0)) {
		t.Fatal("single-leaf root is not the leaf hash")
	}
	p, err := tree.Prove(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Path) != 0 {
		t.Fatalf("single-leaf path has %d elements", len(p.Path))
	}
	if err := Verify(p, leafData(0), tree.Root()); err != nil {
		t.Fatal(err)
	}
}

// RFC 6962 §2.1.3 publishes the 7-leaf test tree; checking one known
// vector guards against a self-consistent-but-wrong implementation.
func TestRFC6962Vector(t *testing.T) {
	// Leaves are the byte strings "", 0x00, 0x10, 0x2021, ... from the
	// certificate-transparency-go reference fixtures.
	inputs := [][]byte{
		{}, {0x00}, {0x10}, {0x20, 0x21}, {0x30, 0x31},
		{0x40, 0x41, 0x42, 0x43}, {0x50, 0x51, 0x52, 0x53, 0x54, 0x55, 0x56, 0x57},
	}
	tree := New()
	for _, in := range inputs {
		tree.Append(LeafHash(in))
	}
	const wantRoot = "ddb89be403809e325750d3d263cd78929c2942b7942a34b77e122c9594a74c8c"
	if got := hex.EncodeToString(func() []byte { r := tree.Root(); return r[:] }()); got != wantRoot {
		t.Fatalf("7-leaf root %s, want %s", got, wantRoot)
	}
}

// Every single-bit-flip class must be rejected: result bytes, a path
// element, the leaf index, the tree size, and a truncated or padded path.
func TestVerifyRejectsTampering(t *testing.T) {
	tree := New()
	for i := 0; i < 11; i++ {
		tree.Append(LeafHash(leafData(i)))
	}
	root := tree.Root()
	p, err := tree.Prove(6)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, leafData(6), root); err != nil {
		t.Fatalf("honest proof rejected: %v", err)
	}

	check := func(name string, p Proof, data []byte, root Hash) {
		t.Helper()
		if err := Verify(p, data, root); !errors.Is(err, ErrBadProof) {
			t.Fatalf("%s: error %v, want ErrBadProof", name, err)
		}
	}

	flipped := append([]byte(nil), leafData(6)...)
	flipped[0] ^= 1
	check("flipped result byte", p, flipped, root)

	badPath := p
	badPath.Path = append([]string(nil), p.Path...)
	raw, _ := hex.DecodeString(badPath.Path[1])
	raw[3] ^= 0x80
	badPath.Path[1] = hex.EncodeToString(raw)
	check("flipped path byte", badPath, leafData(6), root)

	badIdx := p
	badIdx.LeafIndex = 7
	check("wrong leaf index", badIdx, leafData(6), root)

	// Inclusion proofs bind the root, not the exact size (the size is
	// authenticated by the serving endpoint); a size that changes the
	// implied path depth must still be rejected.
	badSize := p
	badSize.TreeSize = 8
	check("tree size shrinks path depth", badSize, leafData(6), root)
	badSize.TreeSize = 64
	check("tree size grows path depth", badSize, leafData(6), root)

	short := p
	short.Path = p.Path[:len(p.Path)-1]
	check("truncated path", short, leafData(6), root)

	long := p
	long.Path = append(append([]string(nil), p.Path...), p.Path[0])
	check("padded path", long, leafData(6), root)

	badRoot := root
	badRoot[0] ^= 1
	check("wrong root", p, leafData(6), badRoot)

	check("index outside tree", Proof{LeafIndex: 5, TreeSize: 3}, leafData(6), root)
	check("non-hex path element", Proof{LeafIndex: 0, TreeSize: 2, Path: []string{"zz"}}, leafData(6), root)
}

func TestProveOutOfRange(t *testing.T) {
	tree := New()
	tree.Append(LeafHash(leafData(0)))
	if _, err := tree.Prove(-1); err == nil {
		t.Fatal("Prove(-1) succeeded")
	}
	if _, err := tree.Prove(1); err == nil {
		t.Fatal("Prove past end succeeded")
	}
}

func TestParseHash(t *testing.T) {
	h := LeafHash([]byte("x"))
	got, err := ParseHash(hex.EncodeToString(h[:]))
	if err != nil || got != h {
		t.Fatalf("round-trip: %v", err)
	}
	if _, err := ParseHash("abcd"); err == nil {
		t.Fatal("short hash accepted")
	}
	if _, err := ParseHash("not-hex"); err == nil {
		t.Fatal("non-hex accepted")
	}
}
