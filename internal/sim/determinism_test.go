package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"testing"
)

// workerCounts are the parallelism levels the determinism suite compares
// against the serial baseline. GOMAXPROCS is included so CI machines with
// different core counts still exercise their native width.
func workerCounts() []int {
	counts := []int{2, 4}
	if g := runtime.GOMAXPROCS(0); g != 2 && g != 4 {
		counts = append(counts, g)
	}
	return counts
}

func resultBytes(t *testing.T, r *Result) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// The parallel epoch hot path must be bit-identical to serial execution:
// same Result JSON, byte for byte, for every worker count. This is the
// contract that lets Workers stay out of cache keys.
func TestWorkersBitIdenticalResult(t *testing.T) {
	cfg := shortConfig()
	run := func(workers int, chipSeed int64, hayatPol bool) []byte {
		c := cfg
		c.Workers = workers
		var e *Engine
		if hayatPol {
			e = newEngine(t, c, hayatPolicy(t), chipSeed)
		} else {
			e = newEngine(t, c, vaaPolicy(t), chipSeed)
		}
		r, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return resultBytes(t, r)
	}
	for _, hayatPol := range []bool{true, false} {
		name := "vaa"
		if hayatPol {
			name = "hayat"
		}
		t.Run(name, func(t *testing.T) {
			serial := run(1, 11, hayatPol)
			for _, w := range workerCounts() {
				if got := run(w, 11, hayatPol); !bytes.Equal(got, serial) {
					t.Errorf("Workers:%d result differs from serial (len %d vs %d)", w, len(got), len(serial))
				}
			}
			// Workers:0 (= GOMAXPROCS) must match too.
			if got := run(0, 11, hayatPol); !bytes.Equal(got, serial) {
				t.Error("Workers:0 result differs from serial")
			}
		})
	}
}

// Checkpoints taken under parallel execution must serialise to the same
// bytes as serial ones, and a run checkpointed at one worker count then
// resumed at another must still reproduce the serial one-shot result.
func TestWorkersBitIdenticalCheckpointAndResume(t *testing.T) {
	cfg := shortConfig()
	cfg.RemixEpochs = 2 // boundaries at 0 and 2

	mk := func(workers int) *Engine {
		c := cfg
		c.Workers = workers
		return newEngine(t, c, hayatPolicy(t), 23)
	}

	serialFull, err := mk(1).Run()
	if err != nil {
		t.Fatal(err)
	}
	serialBytes := resultBytes(t, serialFull)

	cpSerial, err := mk(1).RunCheckpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	var serialCP bytes.Buffer
	if err := WriteCheckpoint(&serialCP, cpSerial); err != nil {
		t.Fatal(err)
	}

	for _, w := range workerCounts() {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			cp, err := mk(w).RunCheckpoint(2)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := WriteCheckpoint(&buf, cp); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), serialCP.Bytes()) {
				t.Error("checkpoint bytes differ from serial")
			}
			// Cross-width resume: parallel checkpoint, parallel resume,
			// compared against the serial one-shot run.
			cp2, err := ReadCheckpoint(&buf)
			if err != nil {
				t.Fatal(err)
			}
			resumed, err := mk(w).Resume(cp2)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(resultBytes(t, resumed), serialBytes) {
				t.Error("resumed parallel result differs from serial one-shot")
			}
			// And a serial resume of the parallel checkpoint.
			cp3 := *cp
			resumedSerial, err := mk(1).Resume(&cp3)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(resultBytes(t, resumedSerial), serialBytes) {
				t.Error("serial resume of parallel checkpoint differs from serial one-shot")
			}
		})
	}
}

// Workers is an execution property, not part of a simulation's identity:
// it must never leak into serialised configs (and therefore cache keys).
func TestWorkersExcludedFromConfigSerialization(t *testing.T) {
	a := shortConfig()
	b := shortConfig()
	b.Workers = 8
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("Workers leaked into serialised sim.Config:\n %s\n %s", ja, jb)
	}
}
