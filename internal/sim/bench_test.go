package sim

import (
	"fmt"
	"testing"
)

// benchConfig is one epoch of the default chip: Years = EpochYears so
// each Run() executes exactly one mapping + thermal + aging cycle — the
// unit the PR's parallelisation targets.
func benchConfig(workers int) Config {
	cfg := DefaultConfig()
	cfg.Years = cfg.EpochYears
	cfg.Workers = workers
	return cfg
}

// BenchmarkSingleChipEpoch measures the epoch hot path (Hayat policy,
// default 8×8 floorplan) at several intra-epoch worker counts. The
// results must be bit-identical across sub-benchmarks (see
// determinism_test.go); only the wall clock may differ.
func BenchmarkSingleChipEpoch(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := newEngine(b, benchConfig(workers), hayatPolicy(b), 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSingleChipEpochVAA is the baseline policy's epoch, for
// comparing policy overhead (VAA has no candidate search, so it gains
// less from parallelism).
func BenchmarkSingleChipEpochVAA(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := newEngine(b, benchConfig(workers), vaaPolicy(b), 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
