package sim

import (
	"context"
	"fmt"
	"testing"

	"github.com/kit-ces/hayat/internal/aging"
)

// benchConfig is one epoch of the default chip: Years = EpochYears so a
// run executes exactly one mapping + thermal + aging cycle — the unit
// the epoch-kernel optimisations target. RemixEpochs is zero so the
// steady state replays one workload mix instead of re-generating it.
func benchConfig(workers int) Config {
	cfg := DefaultConfig()
	cfg.Years = cfg.EpochYears
	cfg.Workers = workers
	cfg.RemixEpochs = 0
	return cfg
}

// benchWarmupEpochs lets the scratch arenas size themselves and the
// malleable mix grow to saturation before measurement starts; after it,
// an epoch is in steady state (no mix regeneration, no arena growth).
const benchWarmupEpochs = 8

// warmState builds a run state and drives it to the steady state.
func warmState(tb testing.TB, e *Engine) *runState {
	tb.Helper()
	st, err := e.newRunState()
	if err != nil {
		tb.Fatal(err)
	}
	if err := e.runRange(context.Background(), st, 0, benchWarmupEpochs); err != nil {
		tb.Fatal(err)
	}
	return st
}

// resetEpochState rewinds the aging/thermal state to its epoch-0 values
// without touching the scratch arenas or the workload mix, so one
// benchmark iteration replays one steady-state epoch on a fresh chip.
func resetEpochState(e *Engine, st *runState) {
	amb := e.tm.Ambient()
	for i := range st.health {
		st.health[i] = aging.NewState()
		st.fmax[i] = e.chip.FMax0[i]
		st.temps[i] = amb
		st.lastUsed[i] = -1 << 30
	}
	for i := range st.prevOn {
		st.prevOn[i] = false
	}
	st.records = st.records[:0]
}

// runSteadyEpoch executes exactly one epoch on a warmed state. Epoch
// index 1 avoids the remix boundary at 0 (RemixEpochs=0 never remixes,
// but keeps the intent explicit).
func runSteadyEpoch(tb testing.TB, e *Engine, st *runState) {
	if err := e.runRange(context.Background(), st, 1, 2); err != nil {
		tb.Fatal(err)
	}
}

// BenchmarkSingleChipEpoch measures the steady-state epoch kernel (Hayat
// policy, default 8×8 floorplan) at several intra-epoch worker counts:
// the run state is warmed once, and each iteration replays one epoch on
// reused scratch arenas. The results must be bit-identical across
// sub-benchmarks (see determinism_test.go); only the wall clock and
// allocation counts may differ.
func BenchmarkSingleChipEpoch(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := newEngine(b, benchConfig(workers), hayatPolicy(b), 1)
			st := warmState(b, e)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resetEpochState(e, st)
				runSteadyEpoch(b, e, st)
			}
		})
	}
}

// BenchmarkSingleChipEpochVAA is the baseline policy's epoch, for
// comparing policy overhead (VAA has no candidate search, so it gains
// less from parallelism).
func BenchmarkSingleChipEpochVAA(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := newEngine(b, benchConfig(workers), vaaPolicy(b), 1)
			st := warmState(b, e)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resetEpochState(e, st)
				runSteadyEpoch(b, e, st)
			}
		})
	}
}

// TestEpochKernelSteadyStateAllocs pins the PR10 allocation contract: a
// steady-state epoch at Workers=1 performs (almost) no heap allocations —
// every per-epoch buffer lives in the runState/policy scratch arenas.
// The budget of 10 leaves headroom for incidental small allocations
// (e.g. a DTM action slice on a thermal event) without letting a
// per-core or per-step regression slip through (the pre-PR10 kernel
// allocated ~985 times per epoch).
func TestEpochKernelSteadyStateAllocs(t *testing.T) {
	e := newEngine(t, benchConfig(1), hayatPolicy(t), 1)
	st := warmState(t, e)
	avg := testing.AllocsPerRun(10, func() {
		resetEpochState(e, st)
		runSteadyEpoch(t, e, st)
	})
	if avg > 10 {
		t.Fatalf("steady-state epoch allocates %.1f times per run, want ≤10", avg)
	}
}
