package sim

import (
	"fmt"
	"io"
	"strings"
)

// TraceSink receives fine-grained samples from the transient windows —
// the debugging/inspection hook for the closed loop (per-step
// temperatures and powers). Samples arrive in simulation order;
// implementations must not retain the slices.
type TraceSink interface {
	Sample(epoch, step int, simTime float64, coreTemps, corePower []float64)
}

// SetTrace installs a trace sink sampling every `everySteps` transient
// steps (≥1). Pass a nil sink to disable tracing.
func (e *Engine) SetTrace(sink TraceSink, everySteps int) error {
	if sink != nil && everySteps < 1 {
		return fmt.Errorf("sim: trace interval must be ≥1, got %d", everySteps)
	}
	e.trace = sink
	e.traceEvery = everySteps
	return nil
}

// TSVTrace writes samples for selected cores as tab-separated values:
// one row per sample with epoch, step, time, then T and P per core.
type TSVTrace struct {
	w     io.Writer
	cores []int
	wrote bool
	err   error
}

// NewTSVTrace builds a sink for the given core indices (all cores when
// nil — beware of volume).
func NewTSVTrace(w io.Writer, cores []int) *TSVTrace {
	return &TSVTrace{w: w, cores: cores}
}

// Err returns the first write error, if any.
func (t *TSVTrace) Err() error { return t.err }

// Sample implements TraceSink.
func (t *TSVTrace) Sample(epoch, step int, simTime float64, coreTemps, corePower []float64) {
	if t.err != nil {
		return
	}
	cores := t.cores
	if cores == nil {
		cores = make([]int, len(coreTemps))
		for i := range cores {
			cores[i] = i
		}
	}
	if !t.wrote {
		var b strings.Builder
		b.WriteString("epoch\tstep\ttime_s")
		for _, c := range cores {
			fmt.Fprintf(&b, "\tT%d_K\tP%d_W", c, c)
		}
		b.WriteByte('\n')
		if _, err := io.WriteString(t.w, b.String()); err != nil {
			t.err = err
			return
		}
		t.wrote = true
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d\t%d\t%.4f", epoch, step, simTime)
	for _, c := range cores {
		if c < 0 || c >= len(coreTemps) {
			t.err = fmt.Errorf("sim: trace core %d out of range", c)
			return
		}
		fmt.Fprintf(&b, "\t%.3f\t%.3f", coreTemps[c], corePower[c])
	}
	b.WriteByte('\n')
	if _, err := io.WriteString(t.w, b.String()); err != nil {
		t.err = err
	}
}

var _ TraceSink = (*TSVTrace)(nil)
