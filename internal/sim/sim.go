// Package sim implements the accelerated-aging evaluation engine of
// Fig. 4: coarse-grained aging epochs (months) each containing a
// fine-grained transient thermal simulation window (seconds), with the
// window's temperature and duty-cycle statistics up-scaled to the epoch
// length to advance the per-core NBTI aging state.
//
// Within each epoch the engine runs the closed loop the paper describes:
// the policy (Hayat or VAA) maps the current workload mix, the transient
// thermal solver integrates the resulting power traces (with
// temperature-dependent leakage), DTM migrates or throttles threads on
// thermal emergencies, and the health monitors (the per-core aging
// sensors D_i) report the degraded maximum frequencies back to the policy
// at the next epoch boundary.
package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"github.com/kit-ces/hayat/internal/aging"
	"github.com/kit-ces/hayat/internal/dtm"
	"github.com/kit-ces/hayat/internal/dvfs"
	"github.com/kit-ces/hayat/internal/faultinject"
	"github.com/kit-ces/hayat/internal/mapping"
	"github.com/kit-ces/hayat/internal/parallel"
	"github.com/kit-ces/hayat/internal/policy"
	"github.com/kit-ces/hayat/internal/power"
	"github.com/kit-ces/hayat/internal/thermal"
	"github.com/kit-ces/hayat/internal/thermpredict"
	"github.com/kit-ces/hayat/internal/variation"
	"github.com/kit-ces/hayat/internal/workload"
)

// Config controls one lifetime simulation.
type Config struct {
	// DarkFraction is the minimum dark-silicon fraction (0.25 or 0.50 in
	// the paper's experiments).
	DarkFraction float64
	// Years is the simulated lifetime (paper: 10).
	Years float64
	// EpochYears is the aging-epoch length (paper: 3 or 6 months).
	EpochYears float64
	// WindowSeconds is the fine-grained transient window simulated per
	// epoch; its statistics are up-scaled to the epoch.
	WindowSeconds float64
	// StepSeconds is the transient integration step.
	StepSeconds float64
	// DTMEverySteps is how often (in steps) the DTM manager inspects
	// temperatures.
	DTMEverySteps int
	// DTM is the thermal-management configuration.
	DTM dtm.Config
	// DutyMode selects the duty estimate the policy uses.
	DutyMode policy.DutyMode
	// HorizonYears is the policy's health-prediction horizon (defaults to
	// EpochYears when zero).
	HorizonYears float64
	// MixApps is the number of applications per workload mix.
	MixApps int
	// MixSeed seeds workload-mix generation.
	MixSeed int64
	// RemixEpochs > 0 draws a fresh mix every that-many epochs ("the next
	// epoch starts considering the same set of workloads (or potentially
	// a different one)"). Zero keeps one mix for the whole lifetime.
	RemixEpochs int
	// IncumbencyEpochs is how many epochs back a core counts as part of
	// the recent DCM for the policy's PrevOn signal. Mix sizes oscillate
	// across remixes; a multi-epoch memory keeps the stressed core set
	// stable instead of resetting whenever a small mix darkens part of
	// the DCM (see policy.Context.PrevOn).
	IncumbencyEpochs int
	// FreqLevels is the optional discrete DVFS ladder (nil = continuous,
	// the paper's assumption). Threads run at their requirement rounded
	// up to the ladder; policies and DTM judge eligibility against the
	// rounded value.
	FreqLevels dvfs.Levels
	// TurboBoost enables the performance-boosting mode the paper cites as
	// an aging aggravator (Intel Turbo Boost [21]): a thread overclocks to
	// its core's aged f_max whenever the core sits below
	// TSafe − TurboMarginK, instead of running at exactly its required
	// frequency. More instructions retire, more power burns, aging
	// accelerates — the trade Fig. 1(b) warns about.
	TurboBoost   bool
	TurboMarginK float64
	// SensorNoiseSigma models imperfect aging sensors [9, 10]: the
	// per-core maximum frequency the policy sees is the true aged value
	// multiplied by (1 + σ·N(0,1)), drawn deterministically per epoch.
	// Zero means ideal health monitors. Threads that land on cores whose
	// TRUE fmax is below their requirement are counted as requirement
	// violations in the epoch records.
	SensorNoiseSigma float64
	// MigrationStallSeconds is the performance cost of a DTM migration:
	// the migrated thread stalls (no instructions retired, halved
	// switching activity while architectural state and caches refill) for
	// this long. Zero disables the cost model. The paper notes migrations
	// imply "performance overhead"; this makes that overhead measurable
	// in the AvgIPS records.
	MigrationStallSeconds float64
	// Malleable enables the malleable application model of [23, 24]: when
	// the policy cannot place some of an application's threads (aged or
	// thermally constrained chip), the application's degree of
	// parallelism K_j is reduced for subsequent epochs, keeping exactly
	// the threads that were placed; it grows back (one thread per epoch,
	// up to the profile's bounds) while everything fits.
	Malleable bool
	// Workers bounds the intra-epoch parallelism of one engine: 0 uses
	// GOMAXPROCS, 1 runs fully serial. It is an execution property, not a
	// simulation parameter — results are bit-identical for every value
	// (see internal/parallel) — so it is excluded from serialisation and
	// from every cache/identity key.
	//lint:ignore key-completeness execution property: results are bit-identical for every worker count (determinism suite), so the key must not split on it
	Workers int `json:"-"`
}

// DefaultConfig returns the paper's experimental settings: 10 years in
// 3-month epochs at 50 % dark silicon.
func DefaultConfig() Config {
	return Config{
		DarkFraction:          0.50,
		Years:                 10,
		EpochYears:            0.25,
		WindowSeconds:         4.0,
		StepSeconds:           0.02,
		DTMEverySteps:         1,
		DTM:                   dtm.DefaultConfig(),
		MigrationStallSeconds: 0.04,
		DutyMode:              policy.DutyKnown,
		MixApps:               4,
		MixSeed:               1,
		RemixEpochs:           4,
		IncumbencyEpochs:      8,
		Malleable:             true,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.DarkFraction < 0 || c.DarkFraction >= 1 {
		return fmt.Errorf("sim: DarkFraction %v outside [0,1)", c.DarkFraction)
	}
	if c.Years <= 0 || c.EpochYears <= 0 || c.EpochYears > c.Years {
		return fmt.Errorf("sim: invalid Years=%v EpochYears=%v", c.Years, c.EpochYears)
	}
	if c.WindowSeconds <= 0 || c.StepSeconds <= 0 || c.StepSeconds > c.WindowSeconds {
		return fmt.Errorf("sim: invalid window (%v s, step %v s)", c.WindowSeconds, c.StepSeconds)
	}
	if c.DTMEverySteps < 1 {
		return fmt.Errorf("sim: DTMEverySteps must be ≥1")
	}
	if err := c.DTM.Validate(); err != nil {
		return err
	}
	if c.MixApps <= 0 {
		return fmt.Errorf("sim: MixApps must be positive")
	}
	if c.IncumbencyEpochs < 0 {
		return fmt.Errorf("sim: negative IncumbencyEpochs")
	}
	if c.SensorNoiseSigma < 0 {
		return fmt.Errorf("sim: negative SensorNoiseSigma")
	}
	if c.MigrationStallSeconds < 0 {
		return fmt.Errorf("sim: negative MigrationStallSeconds")
	}
	if c.TurboBoost && c.TurboMarginK < 0 {
		return fmt.Errorf("sim: negative TurboMarginK")
	}
	if err := c.FreqLevels.Validate(); err != nil {
		return err
	}
	if c.Workers < 0 {
		return fmt.Errorf("sim: negative Workers")
	}
	return nil
}

// EpochRecord captures one epoch's outcome.
type EpochRecord struct {
	Epoch        int
	YearsElapsed float64 // at the END of this epoch
	// Health/frequency state at the end of the epoch.
	AvgHealth, MinHealth float64
	AvgFMax, MaxFMax     float64 // Hz, aged
	// Thermal statistics over the fine-grained window.
	AvgTemp, PeakTemp float64 // Kelvin: time-and-space average / peak
	// MaxSwing is the largest per-core temperature swing (max − min over
	// the window, Kelvin) — a thermal-cycling proxy for the fatigue
	// mechanisms (solder, electromigration) that accompany NBTI.
	MaxSwing float64
	// DTM accounting within the epoch.
	DTMEvents int
	// Threads mapped / left unmapped by the policy this epoch.
	Mapped, Unmapped int
	// Violations counts threads mapped (under noisy sensor readings) to
	// cores whose true aged fmax cannot satisfy their requirement.
	Violations int
	// Throughput proxy: sum of delivered IPS over the window divided by
	// the window (instructions per second, aggregated over cores).
	AvgIPS float64
}

// Result is a whole lifetime simulation.
type Result struct {
	Policy      string
	Config      Config
	ChipSeed    int64
	InitialFMax []float64
	FinalFMax   []float64
	FinalHealth []float64
	Records     []EpochRecord
	TotalDTM    dtm.Stats
	// FinalTemps is the last window's time-averaged per-core temperature.
	FinalTemps []float64
}

// AvgFMaxAt returns the chip-average aged fmax (Hz) after `years`,
// interpolated on epoch boundaries (year 0 = initial).
func (r *Result) AvgFMaxAt(years float64) float64 {
	if years <= 0 || len(r.Records) == 0 {
		sum := 0.0
		for _, f := range r.InitialFMax {
			sum += f
		}
		return sum / float64(len(r.InitialFMax))
	}
	prevYears, prevVal := 0.0, r.AvgFMaxAt(0)
	for _, rec := range r.Records {
		if rec.YearsElapsed >= years {
			frac := (years - prevYears) / (rec.YearsElapsed - prevYears)
			return prevVal + frac*(rec.AvgFMax-prevVal)
		}
		prevYears, prevVal = rec.YearsElapsed, rec.AvgFMax
	}
	return prevVal
}

// Engine drives one chip through its lifetime under one policy.
type Engine struct {
	cfg  Config
	pol  policy.Policy
	chip *variation.Chip
	tm   *thermal.Model
	pm   power.Model
	pred *thermpredict.Predictor
	tab  *aging.Table3D
	pool *parallel.Pool
	// serial short-circuits the pool dispatch on the hottest loops: at
	// Workers()==1 the bodies run as plain inline loops, so the epoch
	// kernel builds no closures (the pool would run them inline anyway,
	// but passing a closure to it forces a heap allocation per call).
	serial bool

	trace      TraceSink
	traceEvery int
	observe    StageObserver
}

// New wires an engine. All dependencies must belong to the same chip.
func New(cfg Config, pol policy.Policy, chip *variation.Chip, tm *thermal.Model,
	pm power.Model, pred *thermpredict.Predictor, tab *aging.Table3D) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if pol == nil || chip == nil || tm == nil || pred == nil || tab == nil {
		return nil, fmt.Errorf("sim: nil dependency")
	}
	if err := pm.Validate(); err != nil {
		return nil, err
	}
	if chip.Floorplan.N() != tm.Floorplan().N() {
		return nil, fmt.Errorf("sim: chip and thermal model disagree on core count")
	}
	e := &Engine{cfg: cfg, pol: pol, chip: chip, tm: tm, pm: pm, pred: pred, tab: tab}
	e.pool = parallel.New(cfg.Workers)
	e.serial = e.pool.Workers() == 1
	return e, nil
}

// runState is the engine's resumable state between epochs.
type runState struct {
	health   []aging.State
	fmax     []float64
	temps    []float64
	lastUsed []int
	prevOn   []bool
	records  []EpochRecord
	dtmMgr   *dtm.Manager
	tr       *thermal.Transient
	mix      *workload.Mix
	// dtmBase carries DTM totals accumulated before a checkpoint restore
	// (the manager itself restarts from zero on resume).
	dtmBase dtm.Stats

	// Per-epoch scratch arenas, reused so the steady-state epoch kernel
	// allocates nothing (see DESIGN.md §15). None of it is part of the
	// resumable state: every field is fully reinitialised each epoch.
	threadBuf []*workload.Thread           // mix.Threads destination
	pctx      policy.Context               // reused policy context (carries Scratch across epochs)
	prevAsg   *mapping.Assignment          // last epoch's assignment, offered back to the policy
	ws        windowStats                  // window statistics accumulators
	pdyn      []float64                    // per-core dynamic power
	total     []float64                    // per-core total power
	nodes     []float64                    // full thermal node state
	cur       []float64                    // per-core current temperatures
	stall     map[*workload.Thread]float64 // migration-stall countdowns
}

// newRunState builds the epoch-0 state.
func (e *Engine) newRunState() (*runState, error) {
	n := e.chip.Floorplan.N()
	st := &runState{
		health:   make([]aging.State, n),
		fmax:     make([]float64, n),
		temps:    make([]float64, n),
		lastUsed: make([]int, n),
		pdyn:     make([]float64, n),
		total:    make([]float64, n),
		nodes:    make([]float64, e.tm.NumNodes()),
		cur:      make([]float64, n),
		stall:    make(map[*workload.Thread]float64),
	}
	for i := 0; i < n; i++ {
		st.health[i] = aging.NewState()
		st.fmax[i] = e.chip.FMax0[i]
		st.temps[i] = e.tm.Ambient()
		st.lastUsed[i] = -1 << 30
	}
	if err := st.attach(e); err != nil {
		return nil, err
	}
	return st, nil
}

// attach (re)creates the non-serialisable members (DTM manager, transient
// integrator).
func (st *runState) attach(e *Engine) error {
	dtmCfg := e.cfg.DTM
	dtmCfg.FreqLevels = e.cfg.FreqLevels
	dtmMgr, err := dtm.NewManager(dtmCfg)
	if err != nil {
		return err
	}
	tr, err := e.tm.NewTransient(e.cfg.StepSeconds)
	if err != nil {
		return err
	}
	st.dtmMgr, st.tr = dtmMgr, tr
	return nil
}

// Epochs returns the total epoch count for the configured lifetime.
func (e *Engine) Epochs() int {
	return int(e.cfg.Years/e.cfg.EpochYears + 0.5)
}

// Run simulates the full lifetime and returns the result.
func (e *Engine) Run() (*Result, error) {
	//lint:ignore ctxfirst compatibility wrapper: context-free callers get the uncancellable root by design
	return e.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: the context is checked
// at every epoch boundary, so a cancelled run stops before the next
// epoch's transient window starts. The returned error wraps ctx.Err() and
// names the epoch reached (a checkpoint at the preceding remix boundary
// makes such a run resumable, see Checkpoint).
func (e *Engine) RunContext(ctx context.Context) (*Result, error) {
	st, err := e.newRunState()
	if err != nil {
		return nil, err
	}
	if err := e.runRange(ctx, st, 0, e.Epochs()); err != nil {
		return nil, err
	}
	return e.packageResult(st), nil
}

// runRange executes epochs [from, to).
func (e *Engine) runRange(ctx context.Context, st *runState, from, to int) error {
	cfg := e.cfg
	n := e.chip.Floorplan.N()
	horizon := cfg.HorizonYears
	if horizon == 0 {
		horizon = cfg.EpochYears
	}
	maxOn := maxOnCores(n, cfg.DarkFraction)
	health, fmax, temps := st.health, st.fmax, st.temps
	lastUsed, prevOn := st.lastUsed, st.prevOn
	mix := st.mix
	var err error

	for ep := from; ep < to; ep++ {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("sim: run cancelled at epoch %d of %d: %w", ep, to, cerr)
		}
		// (Re-)draw the workload mix when due.
		if mix == nil || (cfg.RemixEpochs > 0 && ep%cfg.RemixEpochs == 0) {
			seed := cfg.MixSeed
			if cfg.RemixEpochs > 0 {
				seed += int64(ep / cfg.RemixEpochs)
			}
			mix, err = workload.GenerateMix(workload.MixConfig{MaxThreads: maxOn, Apps: cfg.MixApps}, seed)
			if err != nil {
				return err
			}
		}
		threads := mix.Threads(st.threadBuf[:0])
		st.threadBuf = threads

		// Policy decision at the epoch boundary, fed by the health
		// monitors (current fmax, optionally noisy) and last measured
		// temperatures.
		// The noise draws stay serial: they consume one sequential RNG
		// stream whose order is part of the result contract. (A parallel
		// variant would need parallel.ChunkSeed-derived per-chunk streams,
		// which would change existing outputs — not worth it for n draws.)
		sensedFMax := fmax
		if cfg.SensorNoiseSigma > 0 {
			noiseRng := rand.New(rand.NewSource(cfg.MixSeed ^ (int64(ep)+1)*0x9E3779B9))
			sensedFMax = make([]float64, n)
			for i := range fmax {
				sensedFMax[i] = fmax[i] * (1 + cfg.SensorNoiseSigma*noiseRng.NormFloat64())
				if sensedFMax[i] < 0 {
					sensedFMax[i] = 0
				}
			}
		}
		// The policy context is a reused runState field (one heap value per
		// run, not per epoch); Scratch must survive the re-initialisation —
		// it is how the policy's arenas persist across epochs. The retired
		// assignment is offered back for recycling: the policy may clear
		// and reuse it (Hayat does), so st.prevAsg must not be read again.
		pctx := &st.pctx
		*pctx = policy.Context{
			Chip: e.chip, Predictor: e.pred, AgingTable: e.tab, PowerModel: e.pm,
			TSafe: cfg.DTM.TSafe, MaxOnCores: maxOn, HorizonYears: horizon,
			DutyMode: cfg.DutyMode,
			Health:   health, FMax: sensedFMax, Temps: temps,
			FreqLevels:      cfg.FreqLevels,
			PrevOn:          prevOn,
			Workers:         e.pool.Workers(),
			Scratch:         st.pctx.Scratch,
			ReuseAssignment: st.prevAsg,
		}
		t0 := e.stageStart()
		mres, err := e.pol.Map(pctx, threads)
		e.stageEnd(StageMapping, t0)
		if err != nil {
			return fmt.Errorf("sim: %s mapping failed at epoch %d: %w", e.pol.Name(), ep, err)
		}
		asg := mres.Assignment

		// Malleable adaptation: shrink applications to their placed
		// thread sets, or grow them back while there is headroom.
		if cfg.Malleable {
			adaptParallelism(mix, asg, len(mres.Unmapped), maxOn, cfg.MixSeed+int64(ep))
		}

		// Fine-grained transient window. The failpoint stands in for a
		// transient solver/sensor fault; the service's retry layer treats
		// the injected error as retryable.
		if ferr := faultinject.Hit("sim.thermal-solve"); ferr != nil {
			return fmt.Errorf("sim: thermal window at epoch %d: %w", ep, ferr)
		}
		t0 = e.stageStart()
		rec, werr := e.runWindow(ep, st, asg, mix)
		e.stageEnd(StageThermal, t0)
		if werr != nil {
			return fmt.Errorf("sim: thermal window at epoch %d: %w", ep, werr)
		}

		// Requirement violations are judged against the TRUE fmax the
		// threads actually ran with this epoch (before it ages further).
		violations := 0
		for i := 0; i < n; i++ {
			if th := asg.ThreadOn(i); th != nil && fmax[i] < th.MinFreq() {
				violations++
			}
		}

		// Remember recent DCM membership (after DTM migrations) for the
		// next decision's incumbency signal: a core counts as incumbent
		// for IncumbencyEpochs epochs after it last ran a thread.
		if prevOn == nil {
			prevOn = make([]bool, n)
		}
		for i := 0; i < n; i++ {
			if asg.ThreadOn(i) != nil {
				lastUsed[i] = ep
			}
			prevOn[i] = ep-lastUsed[i] < cfg.IncumbencyEpochs
		}

		// Up-scale the window statistics to the epoch and advance aging:
		// worst-case temperature and occupancy-weighted duty per core
		// (Section IV-B step 3). Each core's advance is independent (table
		// lookups + bisection on immutable state), so the loop chunks
		// across the pool with disjoint index writes — bit-identical to
		// the serial order.
		t0 = e.stageStart()
		if e.serial {
			for i := 0; i < n; i++ {
				health[i].Advance(e.tab, rec.worstTemp[i], rec.dutyAvg[i], cfg.EpochYears)
				fmax[i] = e.chip.FMax0[i] * health[i].Factor
			}
		} else {
			e.pool.For(n, agingGrain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					health[i].Advance(e.tab, rec.worstTemp[i], rec.dutyAvg[i], cfg.EpochYears)
					fmax[i] = e.chip.FMax0[i] * health[i].Factor
				}
			})
		}
		e.stageEnd(StageAging, t0)

		// Record.
		er := EpochRecord{
			Epoch:        ep,
			YearsElapsed: float64(ep+1) * cfg.EpochYears,
			DTMEvents:    rec.dtmEvents,
			Mapped:       asg.NumAssigned(),
			Unmapped:     len(mres.Unmapped),
			Violations:   violations,
			AvgTemp:      rec.avgTemp,
			PeakTemp:     rec.peakTemp,
			MaxSwing:     rec.maxSwing,
			AvgIPS:       rec.avgIPS,
		}
		er.AvgHealth, er.MinHealth = healthStats(health)
		er.AvgFMax, er.MaxFMax = fmaxStats(fmax)
		st.records = append(st.records, er)
		st.prevAsg = asg
	}
	st.prevOn = prevOn
	st.mix = mix
	return nil
}

// packageResult assembles the public Result from a finished state.
func (e *Engine) packageResult(st *runState) *Result {
	n := e.chip.Floorplan.N()
	res := &Result{
		Policy:      e.pol.Name(),
		Config:      e.cfg,
		ChipSeed:    e.chip.Seed,
		InitialFMax: append([]float64(nil), e.chip.FMax0...),
		Records:     st.records,
	}
	res.FinalFMax = append([]float64(nil), st.fmax...)
	res.FinalHealth = make([]float64, n)
	for i := range st.health {
		res.FinalHealth[i] = st.health[i].Factor
	}
	res.FinalTemps = append([]float64(nil), st.temps...)
	res.TotalDTM = st.dtmMgr.Stats()
	res.TotalDTM.Add(st.dtmBase)
	return res
}

// windowStats accumulates fine-grained statistics for one epoch.
type windowStats struct {
	worstTemp []float64
	bestTemp  []float64 // per-core minimum over the window
	avgTempPC []float64 // per-core time average
	dutyAvg   []float64
	avgTemp   float64
	peakTemp  float64
	maxSwing  float64
	dtmEvents int
	avgIPS    float64
}

// reset prepares the accumulators for an n-core window. The extreme
// trackers are seeded at ∓Inf rather than a 0.0 sentinel (the PR10
// zero-sentinel bug class): an all-negative field still reports its true
// extremes. For physical positive-Kelvin temperatures the first of the
// ≥1 steps overwrites the seeds either way, bit-identically to the old
// zero seeds.
func (ws *windowStats) reset(n int) {
	if cap(ws.worstTemp) < n {
		ws.worstTemp = make([]float64, n)
		ws.bestTemp = make([]float64, n)
		ws.avgTempPC = make([]float64, n)
		ws.dutyAvg = make([]float64, n)
	}
	ws.worstTemp = ws.worstTemp[:n]
	ws.bestTemp = ws.bestTemp[:n]
	ws.avgTempPC = ws.avgTempPC[:n]
	ws.dutyAvg = ws.dutyAvg[:n]
	for i := 0; i < n; i++ {
		ws.worstTemp[i] = math.Inf(-1)
		ws.bestTemp[i] = math.Inf(1)
		ws.avgTempPC[i] = 0
		ws.dutyAvg[i] = 0
	}
	ws.avgTemp = 0
	ws.peakTemp = math.Inf(-1)
	ws.maxSwing = 0
	ws.dtmEvents = 0
	ws.avgIPS = 0
}

// runWindow executes the fine-grained transient simulation for one epoch
// and updates st.temps in place with the per-core time-averaged
// temperatures. A non-finite temperature anywhere in the window (poisoned
// power input or a degenerate solve) aborts the window with an error so
// NaN/Inf never reaches the aging advance. All working memory comes from
// the runState scratch arenas; the returned stats point into st.ws and
// are valid until the next window.
func (e *Engine) runWindow(epoch int, st *runState, asg *mapping.Assignment, mix *workload.Mix) (*windowStats, error) {
	cfg := e.cfg
	fmax, temps := st.fmax, st.temps
	dtmMgr, tr := st.dtmMgr, st.tr
	n := len(fmax)
	ws := &st.ws
	ws.reset(n)

	// Start the window from the steady state of the mapping's current
	// power, so the multi-second sink warm-up does not eat the window.
	pdyn, total := st.pdyn, st.total
	e.corePowers(pdyn, total, asg, dtmMgr, temps, fmax, nil)
	if _, err := e.tm.SteadyStateChecked(total, st.nodes); err != nil {
		return nil, err
	}
	tr.SetState(st.nodes)
	st.cur = tr.CoreTemps(st.cur)
	cur := st.cur

	steps := int(cfg.WindowSeconds/cfg.StepSeconds + 0.5)
	if steps < 1 {
		steps = 1
	}
	dtmBefore := dtmMgr.Stats()
	tempSum := 0.0
	ipsSum := 0.0
	stall := st.stall
	clear(stall)

	for s := 0; s < steps; s++ {
		e.corePowers(pdyn, total, asg, dtmMgr, cur, fmax, stall)
		if err := tr.StepChecked(total); err != nil {
			return nil, err
		}
		cur = tr.CoreTemps(cur)

		for i := 0; i < n; i++ {
			if cur[i] > ws.worstTemp[i] {
				ws.worstTemp[i] = cur[i]
			}
			if cur[i] < ws.bestTemp[i] {
				ws.bestTemp[i] = cur[i]
			}
			if cur[i] > ws.peakTemp {
				ws.peakTemp = cur[i]
			}
			ws.avgTempPC[i] += cur[i]
			tempSum += cur[i]
			if th := asg.ThreadOn(i); th != nil {
				if stall[th] > 0 {
					continue // migration stall: no instructions retire
				}
				ph := th.Phase()
				ws.dutyAvg[i] += ph.Duty
				f := e.operatingFreq(th, i, fmax, cur) * dtmMgr.FrequencyFactor(i)
				ipsSum += ph.IPC * f
			}
		}
		if s%cfg.DTMEverySteps == 0 {
			for _, act := range dtmMgr.Step(cur, fmax, asg) {
				if act.Kind == dtm.Migrate && cfg.MigrationStallSeconds > 0 {
					stall[act.Thread] = cfg.MigrationStallSeconds
				}
			}
		}
		for th, left := range stall {
			if left <= cfg.StepSeconds {
				delete(stall, th)
			} else {
				stall[th] = left - cfg.StepSeconds
			}
		}
		if e.trace != nil && s%e.traceEvery == 0 {
			e.trace.Sample(epoch, s, float64(s)*cfg.StepSeconds, cur, total)
		}
		mix.Advance(cfg.StepSeconds)
	}

	inv := 1.0 / float64(steps)
	for i := 0; i < n; i++ {
		ws.avgTempPC[i] *= inv
		ws.dutyAvg[i] *= inv
		temps[i] = ws.avgTempPC[i]
		if swing := ws.worstTemp[i] - ws.bestTemp[i]; swing > ws.maxSwing {
			ws.maxSwing = swing
		}
	}
	ws.avgTemp = tempSum * inv / float64(n)
	ws.avgIPS = ipsSum * inv
	after := dtmMgr.Stats()
	ws.dtmEvents = after.Events() - dtmBefore.Events()
	return ws, nil
}

// Chunk grains for the parallel per-core loops. Boundaries derive only
// from (n, grain) — see internal/parallel — so these constants are part
// of the determinism contract only insofar as changing them re-chunks the
// work; the numeric output is unaffected either way because every body
// writes disjoint indices.
const (
	// agingGrain is small: one aging advance costs a table bisection
	// (~60 trilinear lookups), so even few-core chunks amortise the
	// dispatch.
	agingGrain = 8
	// powerGrain is coarse: one core's power evaluation is tens of
	// nanoseconds, so only large chips benefit from splitting; the
	// default 8×8 chip yields two chunks.
	powerGrain = 32
)

// corePowers fills pdyn (dynamic only) and total (dynamic + leakage /
// gated leakage) for the current assignment, thread phases and
// temperatures. Every iteration writes only pdyn[i]/total[i] and reads
// state that is immutable during the call (assignment, phases, DTM
// throttle flags, stall map), so the loop chunks across the pool.
func (e *Engine) corePowers(pdyn, total []float64, asg *mapping.Assignment, dtmMgr *dtm.Manager, temps, fmax []float64, stall map[*workload.Thread]float64) {
	if e.serial {
		// Inline fast path: no closure, no pool dispatch (see Engine.serial).
		e.corePowersRange(0, len(pdyn), pdyn, total, asg, dtmMgr, temps, fmax, stall)
		return
	}
	e.pool.For(len(pdyn), powerGrain, func(lo, hi int) {
		e.corePowersRange(lo, hi, pdyn, total, asg, dtmMgr, temps, fmax, stall)
	})
}

func (e *Engine) corePowersRange(lo, hi int, pdyn, total []float64, asg *mapping.Assignment, dtmMgr *dtm.Manager, temps, fmax []float64, stall map[*workload.Thread]float64) {
	for i := lo; i < hi; i++ {
		th := asg.ThreadOn(i)
		if th == nil {
			pdyn[i] = 0
			total[i] = e.pm.GatedLeakage
			continue
		}
		ph := th.Phase()
		f := e.operatingFreq(th, i, fmax, temps) * dtmMgr.FrequencyFactor(i)
		activity := ph.Activity
		if stall != nil && stall[th] > 0 {
			activity *= 0.5 // cache/state refill burns power without retiring work
		}
		pdyn[i] = e.pm.DynamicPower(f, activity)
		total[i] = pdyn[i] + e.pm.CoreLeakage(e.chip.LeakFactor[i], temps[i], true)
	}
}

// adaptParallelism implements the malleable application model: each app
// keeps the threads the mapping placed (dropping unplaced ones for the
// next epoch); when everything was placed and budget remains, apps grow
// one thread per epoch back toward their profile bounds.
func adaptParallelism(mix *workload.Mix, asg *mapping.Assignment, unmapped, maxOn int, seed int64) {
	if unmapped > 0 {
		for _, a := range mix.Apps {
			placed := 0
			for _, t := range a.Threads {
				if _, ok := asg.CoreOf(t); ok {
					placed++
				}
			}
			if placed == len(a.Threads) {
				continue
			}
			a.Retain(func(t *workload.Thread) bool {
				_, ok := asg.CoreOf(t)
				return ok
			})
			want := placed
			if want < a.Profile.MinThreads {
				want = a.Profile.MinThreads
			}
			a.Resize(want, seed)
		}
		return
	}
	// Growth phase: one extra thread per epoch while it fits the budget.
	if mix.NumThreads() < maxOn {
		for _, a := range mix.Apps {
			if len(a.Threads) < a.Profile.MaxThreads && mix.NumThreads() < maxOn {
				a.Resize(len(a.Threads)+1, seed)
				return // at most one growth step per epoch
			}
		}
	}
}

// operatingFreq is the frequency a thread actually runs at on core i: its
// requirement rounded up to the DVFS ladder (falling back to the raw
// requirement if the ladder cannot serve it — the policy will already
// have reported such threads unmapped), or, with TurboBoost enabled and
// thermal headroom available, the core's aged f_max capped to the ladder.
func (e *Engine) operatingFreq(th *workload.Thread, i int, fmax, temps []float64) float64 {
	base := th.MinFreq()
	if f, ok := e.cfg.FreqLevels.Required(base); ok {
		base = f
	}
	if e.cfg.TurboBoost && temps != nil && temps[i] < e.cfg.DTM.TSafe-e.cfg.TurboMarginK {
		if turbo, ok := e.cfg.FreqLevels.Cap(fmax[i]); ok && turbo > base {
			return turbo
		}
	}
	return base
}

func maxOnCores(n int, darkFraction float64) int {
	on := int(float64(n) * (1 - darkFraction))
	if on < 1 {
		on = 1
	}
	return on
}

func healthStats(h []aging.State) (avg, min float64) {
	min = 1
	for i := range h {
		avg += h[i].Factor
		if h[i].Factor < min {
			min = h[i].Factor
		}
	}
	return avg / float64(len(h)), min
}

func fmaxStats(f []float64) (avg, max float64) {
	for _, v := range f {
		avg += v
		if v > max {
			max = v
		}
	}
	return avg / float64(len(f)), max
}
