package sim

import "time"

// Stage identifies one phase of the per-epoch loop for timing purposes.
type Stage int

const (
	// StageMapping is the policy decision (DCM selection + thread
	// placement) at the epoch boundary.
	StageMapping Stage = iota
	// StageThermal is the fine-grained transient window (power
	// computation, implicit-Euler steps, DTM).
	StageThermal
	// StageAging is the per-core aging advance and fmax refresh.
	StageAging
	numStages
)

// String returns the stage's metrics label.
func (s Stage) String() string {
	switch s {
	case StageMapping:
		return "mapping"
	case StageThermal:
		return "thermal"
	case StageAging:
		return "aging"
	default:
		return "unknown"
	}
}

// Stages lists every stage in execution order, for metrics exporters.
func Stages() []Stage { return []Stage{StageMapping, StageThermal, StageAging} }

// StageObserver receives the wall-clock duration of one stage of one
// epoch. Observers run on the engine's goroutine and must be fast; they
// see execution timings only — nothing an observer does can influence the
// simulation result, which stays bit-identical with or without one.
type StageObserver func(stage Stage, d time.Duration)

// SetStageObserver installs (or clears, with nil) the per-stage timing
// hook. Must be called before the run starts. A nil observer costs
// nothing: the engine skips clock reads entirely.
func (e *Engine) SetStageObserver(obs StageObserver) { e.observe = obs }

// stageStart reads the clock only when an observer is installed.
func (e *Engine) stageStart() time.Time {
	if e.observe == nil {
		return time.Time{}
	}
	//lint:ignore determinism wall time flows only to the metrics observer, never into Result/checkpoint state
	return time.Now()
}

// stageEnd reports the elapsed stage time to the observer, if any.
func (e *Engine) stageEnd(s Stage, t0 time.Time) {
	if e.observe != nil {
		//lint:ignore determinism wall time flows only to the metrics observer, never into Result/checkpoint state
		e.observe(s, time.Since(t0))
	}
}
