package sim

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

// countingCtx reports cancellation after its Err method has been
// consulted `allow` times, giving a deterministic cancellation point at a
// known epoch boundary.
type countingCtx struct {
	context.Context
	mu    sync.Mutex
	calls int
	allow int
}

func (c *countingCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.calls > c.allow {
		return context.Canceled
	}
	return nil
}

func TestRunContextCompletesWithBackground(t *testing.T) {
	e := newEngine(t, shortConfig(), hayatPolicy(t), 1)
	res, err := e.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != e.Epochs() {
		t.Fatalf("got %d records, want %d", len(res.Records), e.Epochs())
	}
}

func TestRunContextCancelledBeforeStart(t *testing.T) {
	e := newEngine(t, shortConfig(), hayatPolicy(t), 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if !strings.Contains(err.Error(), "epoch 0") {
		t.Fatalf("error should name epoch 0, got %q", err)
	}
}

func TestRunContextStopsAtEpochBoundary(t *testing.T) {
	e := newEngine(t, shortConfig(), hayatPolicy(t), 1)
	// Allow exactly two epoch-boundary checks: epochs 0 and 1 run, the
	// check entering epoch 2 observes the cancellation.
	ctx := &countingCtx{Context: context.Background(), allow: 2}
	_, err := e.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if !strings.Contains(err.Error(), "epoch 2") {
		t.Fatalf("cancellation should be observed entering epoch 2, got %q", err)
	}
}

func TestResumeContextCancelled(t *testing.T) {
	cfg := shortConfig() // 4 epochs, RemixEpochs=4 → boundary at 0 only; use 8
	cfg.Years = 2        // 8 epochs with remix boundary at 4
	e := newEngine(t, cfg, hayatPolicy(t), 1)
	cp, err := e.RunCheckpoint(4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ResumeContext(ctx, cp); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// And an unconstrained resume still completes.
	res, err := e.ResumeContext(context.Background(), cp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != e.Epochs() {
		t.Fatalf("resumed run has %d records, want %d", len(res.Records), e.Epochs())
	}
}
