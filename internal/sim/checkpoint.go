package sim

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"github.com/kit-ces/hayat/internal/dtm"
)

// Checkpoint is the engine's serialisable state at an epoch boundary, for
// splitting long campaigns across processes. Checkpoints are only valid
// at workload-remix boundaries (NextEpoch % RemixEpochs == 0): the mix is
// regenerated deterministically there, so no thread phase state needs to
// survive serialisation. In-flight DTM transients (throttle marks,
// migration cooldowns) are intentionally dropped — they are sub-second
// artefacts against month-long epochs.
type Checkpoint struct {
	Version    int           `json:"version"`
	ChipSeed   int64         `json:"chip_seed"`
	Policy     string        `json:"policy"`
	NextEpoch  int           `json:"next_epoch"`
	Health     []float64     `json:"health"`
	Temps      []float64     `json:"temps_k"`
	LastUsed   []int         `json:"last_used_epoch"`
	PrevOn     []bool        `json:"prev_on"`
	Migrations int           `json:"dtm_migrations"`
	Throttles  int           `json:"dtm_throttles"`
	Records    []EpochRecord `json:"records"`
}

// checkpointVersion is bumped on incompatible layout changes.
const checkpointVersion = 1

// Validate checks structural consistency against an engine.
func (cp *Checkpoint) Validate(e *Engine) error {
	if cp.Version != checkpointVersion {
		return fmt.Errorf("sim: checkpoint version %d, want %d", cp.Version, checkpointVersion)
	}
	if cp.ChipSeed != e.chip.Seed {
		return fmt.Errorf("sim: checkpoint for chip %d, engine has chip %d", cp.ChipSeed, e.chip.Seed)
	}
	if cp.Policy != e.pol.Name() {
		return fmt.Errorf("sim: checkpoint for policy %q, engine runs %q", cp.Policy, e.pol.Name())
	}
	n := e.chip.Floorplan.N()
	if len(cp.Health) != n || len(cp.Temps) != n || len(cp.LastUsed) != n {
		return fmt.Errorf("sim: checkpoint arrays inconsistent with %d cores", n)
	}
	if cp.PrevOn != nil && len(cp.PrevOn) != n {
		return fmt.Errorf("sim: checkpoint PrevOn sized %d, want %d", len(cp.PrevOn), n)
	}
	if cp.NextEpoch < 0 || cp.NextEpoch > e.Epochs() {
		return fmt.Errorf("sim: checkpoint epoch %d outside [0,%d]", cp.NextEpoch, e.Epochs())
	}
	if e.cfg.RemixEpochs > 0 {
		if cp.NextEpoch%e.cfg.RemixEpochs != 0 {
			return fmt.Errorf("sim: checkpoint epoch %d is not a remix boundary (RemixEpochs=%d)",
				cp.NextEpoch, e.cfg.RemixEpochs)
		}
	} else if cp.NextEpoch != 0 {
		return fmt.Errorf("sim: with RemixEpochs=0 the mix's phase state cannot be reconstructed; checkpointing unsupported")
	}
	if len(cp.Records) != cp.NextEpoch {
		return fmt.Errorf("sim: checkpoint has %d records for %d completed epochs", len(cp.Records), cp.NextEpoch)
	}
	for i, h := range cp.Health {
		if h <= 0 || h > 1 {
			return fmt.Errorf("sim: checkpoint health[%d] = %v", i, h)
		}
	}
	return nil
}

// RunCheckpoint runs epochs [0, uptoEpoch) and captures the state.
// uptoEpoch must be a remix boundary (see Checkpoint).
func (e *Engine) RunCheckpoint(uptoEpoch int) (*Checkpoint, error) {
	st, err := e.newRunState()
	if err != nil {
		return nil, err
	}
	if uptoEpoch < 0 || uptoEpoch > e.Epochs() {
		return nil, fmt.Errorf("sim: uptoEpoch %d outside [0,%d]", uptoEpoch, e.Epochs())
	}
	if err := e.runRange(context.Background(), st, 0, uptoEpoch); err != nil {
		return nil, err
	}
	cp := &Checkpoint{
		Version:   checkpointVersion,
		ChipSeed:  e.chip.Seed,
		Policy:    e.pol.Name(),
		NextEpoch: uptoEpoch,
		Temps:     append([]float64(nil), st.temps...),
		LastUsed:  append([]int(nil), st.lastUsed...),
		Records:   append([]EpochRecord(nil), st.records...),
	}
	cp.Health = make([]float64, len(st.health))
	for i := range st.health {
		cp.Health[i] = st.health[i].Factor
	}
	if st.prevOn != nil {
		cp.PrevOn = append([]bool(nil), st.prevOn...)
	}
	stats := st.dtmMgr.Stats()
	cp.Migrations, cp.Throttles = stats.Migrations, stats.Throttles
	if err := cp.Validate(e); err != nil {
		return nil, err
	}
	return cp, nil
}

// Resume continues a checkpointed run to the end of the lifetime and
// returns the complete result (including the checkpointed epochs).
func (e *Engine) Resume(cp *Checkpoint) (*Result, error) {
	return e.ResumeContext(context.Background(), cp)
}

// ResumeContext is Resume with cooperative cancellation at epoch
// boundaries (see RunContext).
func (e *Engine) ResumeContext(ctx context.Context, cp *Checkpoint) (*Result, error) {
	if err := cp.Validate(e); err != nil {
		return nil, err
	}
	st, err := e.newRunState()
	if err != nil {
		return nil, err
	}
	for i := range st.health {
		st.health[i].Factor = cp.Health[i]
		st.fmax[i] = e.chip.FMax0[i] * cp.Health[i]
		st.temps[i] = cp.Temps[i]
		st.lastUsed[i] = cp.LastUsed[i]
	}
	if cp.PrevOn != nil {
		st.prevOn = append([]bool(nil), cp.PrevOn...)
	}
	st.records = append([]EpochRecord(nil), cp.Records...)
	if err := e.runRange(ctx, st, cp.NextEpoch, e.Epochs()); err != nil {
		return nil, err
	}
	res := e.packageResult(st)
	res.TotalDTM.Add(dtm.Stats{Migrations: cp.Migrations, Throttles: cp.Throttles})
	return res, nil
}

// WriteCheckpoint serialises the checkpoint as indented JSON.
func WriteCheckpoint(w io.Writer, cp *Checkpoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cp)
}

// ReadCheckpoint deserialises a checkpoint (structural validation happens
// at Resume, against the engine).
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("sim: decoding checkpoint: %w", err)
	}
	return &cp, nil
}
