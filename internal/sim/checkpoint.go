package sim

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/kit-ces/hayat/internal/dtm"
)

// Checkpoint is the engine's serialisable state at an epoch boundary, for
// splitting long campaigns across processes. Checkpoints are only valid
// at workload-remix boundaries (NextEpoch % RemixEpochs == 0): the mix is
// regenerated deterministically there, so no thread phase state needs to
// survive serialisation. In-flight DTM transients (throttle marks,
// migration cooldowns) are intentionally dropped — they are sub-second
// artefacts against month-long epochs.
type Checkpoint struct {
	Version    int           `json:"version"`
	ChipSeed   int64         `json:"chip_seed"`
	Policy     string        `json:"policy"`
	NextEpoch  int           `json:"next_epoch"`
	Health     []float64     `json:"health"`
	Temps      []float64     `json:"temps_k"`
	LastUsed   []int         `json:"last_used_epoch"`
	PrevOn     []bool        `json:"prev_on"`
	Migrations int           `json:"dtm_migrations"`
	Throttles  int           `json:"dtm_throttles"`
	Records    []EpochRecord `json:"records"`
}

// checkpointVersion is bumped on incompatible layout changes.
const checkpointVersion = 1

// Validate checks structural consistency against an engine.
func (cp *Checkpoint) Validate(e *Engine) error {
	if cp.Version != checkpointVersion {
		return fmt.Errorf("sim: checkpoint version %d, want %d", cp.Version, checkpointVersion)
	}
	if cp.ChipSeed != e.chip.Seed {
		return fmt.Errorf("sim: checkpoint for chip %d, engine has chip %d", cp.ChipSeed, e.chip.Seed)
	}
	if cp.Policy != e.pol.Name() {
		return fmt.Errorf("sim: checkpoint for policy %q, engine runs %q", cp.Policy, e.pol.Name())
	}
	n := e.chip.Floorplan.N()
	if len(cp.Health) != n || len(cp.Temps) != n || len(cp.LastUsed) != n {
		return fmt.Errorf("sim: checkpoint arrays inconsistent with %d cores", n)
	}
	if cp.PrevOn != nil && len(cp.PrevOn) != n {
		return fmt.Errorf("sim: checkpoint PrevOn sized %d, want %d", len(cp.PrevOn), n)
	}
	if cp.NextEpoch < 0 || cp.NextEpoch > e.Epochs() {
		return fmt.Errorf("sim: checkpoint epoch %d outside [0,%d]", cp.NextEpoch, e.Epochs())
	}
	if e.cfg.RemixEpochs > 0 {
		if cp.NextEpoch%e.cfg.RemixEpochs != 0 {
			return fmt.Errorf("sim: checkpoint epoch %d is not a remix boundary (RemixEpochs=%d)",
				cp.NextEpoch, e.cfg.RemixEpochs)
		}
	} else if cp.NextEpoch != 0 {
		return fmt.Errorf("sim: with RemixEpochs=0 the mix's phase state cannot be reconstructed; checkpointing unsupported")
	}
	if len(cp.Records) != cp.NextEpoch {
		return fmt.Errorf("sim: checkpoint has %d records for %d completed epochs", len(cp.Records), cp.NextEpoch)
	}
	for i, h := range cp.Health {
		if h <= 0 || h > 1 {
			return fmt.Errorf("sim: checkpoint health[%d] = %v", i, h)
		}
	}
	return nil
}

// snapshot captures a checkpoint from a run state that has completed
// epochs [0, nextEpoch).
func (e *Engine) snapshot(st *runState, nextEpoch int) (*Checkpoint, error) {
	cp := &Checkpoint{
		Version:   checkpointVersion,
		ChipSeed:  e.chip.Seed,
		Policy:    e.pol.Name(),
		NextEpoch: nextEpoch,
		Temps:     append([]float64(nil), st.temps...),
		LastUsed:  append([]int(nil), st.lastUsed...),
		Records:   append([]EpochRecord(nil), st.records...),
	}
	cp.Health = make([]float64, len(st.health))
	for i := range st.health {
		cp.Health[i] = st.health[i].Factor
	}
	if st.prevOn != nil {
		cp.PrevOn = append([]bool(nil), st.prevOn...)
	}
	stats := st.dtmMgr.Stats()
	stats.Add(st.dtmBase)
	cp.Migrations, cp.Throttles = stats.Migrations, stats.Throttles
	if err := cp.Validate(e); err != nil {
		return nil, err
	}
	return cp, nil
}

// restore builds the run state a validated checkpoint describes.
func (e *Engine) restore(cp *Checkpoint) (*runState, error) {
	if err := cp.Validate(e); err != nil {
		return nil, err
	}
	st, err := e.newRunState()
	if err != nil {
		return nil, err
	}
	for i := range st.health {
		st.health[i].Factor = cp.Health[i]
		st.fmax[i] = e.chip.FMax0[i] * cp.Health[i]
		st.temps[i] = cp.Temps[i]
		st.lastUsed[i] = cp.LastUsed[i]
	}
	if cp.PrevOn != nil {
		st.prevOn = append([]bool(nil), cp.PrevOn...)
	}
	st.records = append([]EpochRecord(nil), cp.Records...)
	st.dtmBase = dtm.Stats{Migrations: cp.Migrations, Throttles: cp.Throttles}
	return st, nil
}

// RunCheckpoint runs epochs [0, uptoEpoch) and captures the state.
// uptoEpoch must be a remix boundary (see Checkpoint).
func (e *Engine) RunCheckpoint(uptoEpoch int) (*Checkpoint, error) {
	st, err := e.newRunState()
	if err != nil {
		return nil, err
	}
	if uptoEpoch < 0 || uptoEpoch > e.Epochs() {
		return nil, fmt.Errorf("sim: uptoEpoch %d outside [0,%d]", uptoEpoch, e.Epochs())
	}
	//lint:ignore ctxfirst compatibility wrapper: context-free callers get the uncancellable root by design
	if err := e.runRange(context.Background(), st, 0, uptoEpoch); err != nil {
		return nil, err
	}
	return e.snapshot(st, uptoEpoch)
}

// Resume continues a checkpointed run to the end of the lifetime and
// returns the complete result (including the checkpointed epochs).
func (e *Engine) Resume(cp *Checkpoint) (*Result, error) {
	//lint:ignore ctxfirst compatibility wrapper: context-free callers get the uncancellable root by design
	return e.ResumeContext(context.Background(), cp)
}

// ResumeContext is Resume with cooperative cancellation at epoch
// boundaries (see RunContext).
func (e *Engine) ResumeContext(ctx context.Context, cp *Checkpoint) (*Result, error) {
	return e.ResumeContextCheckpointed(ctx, cp, 0, nil)
}

// CheckpointSink receives periodic checkpoints during a run. A non-nil
// error aborts the run; sinks that persist best-effort should swallow
// their own failures and return nil.
type CheckpointSink func(cp *Checkpoint) error

// RunContextCheckpointed is RunContext with periodic checkpointing: sink
// is invoked at every workload-remix boundary that is a multiple of
// `every` epochs (every ≤ RemixEpochs means every remix boundary). With a
// nil sink, or on configurations without remix boundaries
// (RemixEpochs = 0), it degrades to RunContext.
func (e *Engine) RunContextCheckpointed(ctx context.Context, every int, sink CheckpointSink) (*Result, error) {
	st, err := e.newRunState()
	if err != nil {
		return nil, err
	}
	return e.runCheckpointed(ctx, st, 0, every, sink)
}

// ResumeContextCheckpointed continues a checkpointed run with the same
// periodic checkpointing as RunContextCheckpointed, so a run interrupted
// repeatedly keeps moving forward from its most recent boundary.
func (e *Engine) ResumeContextCheckpointed(ctx context.Context, cp *Checkpoint, every int, sink CheckpointSink) (*Result, error) {
	st, err := e.restore(cp)
	if err != nil {
		return nil, err
	}
	return e.runCheckpointed(ctx, st, cp.NextEpoch, every, sink)
}

// runCheckpointed executes epochs [from, Epochs) in checkpoint-cadence
// chunks, invoking sink between chunks.
func (e *Engine) runCheckpointed(ctx context.Context, st *runState, from, every int, sink CheckpointSink) (*Result, error) {
	total := e.Epochs()
	if sink == nil || e.cfg.RemixEpochs <= 0 {
		if err := e.runRange(ctx, st, from, total); err != nil {
			return nil, err
		}
		return e.packageResult(st), nil
	}
	stride := e.cfg.RemixEpochs
	if every > stride {
		// Round the cadence up to a multiple of the remix interval:
		// checkpoints are only valid on remix boundaries.
		stride = (every + e.cfg.RemixEpochs - 1) / e.cfg.RemixEpochs * e.cfg.RemixEpochs
	}
	for at := from; at < total; {
		next := at - at%stride + stride
		if next > total {
			next = total
		}
		if err := e.runRange(ctx, st, at, next); err != nil {
			return nil, err
		}
		at = next
		if at < total && at%e.cfg.RemixEpochs == 0 {
			cp, err := e.snapshot(st, at)
			if err != nil {
				return nil, err
			}
			if err := sink(cp); err != nil {
				return nil, fmt.Errorf("sim: checkpoint sink at epoch %d: %w", at, err)
			}
		}
	}
	return e.packageResult(st), nil
}

// WriteCheckpoint serialises the checkpoint as indented JSON.
func WriteCheckpoint(w io.Writer, cp *Checkpoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cp)
}

// ReadCheckpoint deserialises a checkpoint (structural validation happens
// at Resume, against the engine).
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("sim: decoding checkpoint: %w", err)
	}
	return &cp, nil
}

// WriteCheckpointFile persists the checkpoint atomically: the JSON is
// written to a temporary file in the target directory and renamed into
// place, so a crash mid-write can never leave a torn checkpoint where a
// reader expects a valid one.
func WriteCheckpointFile(path string, cp *Checkpoint) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("sim: checkpoint temp file: %w", err)
	}
	err = WriteCheckpoint(tmp, cp)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("sim: writing checkpoint: %w", cerr)
	}
	if err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sim: publishing checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpointFile reads a checkpoint written by WriteCheckpointFile.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sim: opening checkpoint: %w", err)
	}
	defer f.Close()
	return ReadCheckpoint(f)
}
