package sim

import (
	"math"
	"strings"
	"testing"

	"github.com/kit-ces/hayat/internal/baseline"
	"github.com/kit-ces/hayat/internal/core"
	"github.com/kit-ces/hayat/internal/dtm"
	"github.com/kit-ces/hayat/internal/dvfs"
	"github.com/kit-ces/hayat/internal/policy"
	"github.com/kit-ces/hayat/internal/testutil"
)

// shortConfig keeps unit tests fast: 1 year in quarter epochs, short
// windows.
func shortConfig() Config {
	cfg := DefaultConfig()
	cfg.Years = 1
	cfg.WindowSeconds = 1.0
	cfg.StepSeconds = 0.02
	return cfg
}

func newEngine(t testing.TB, cfg Config, pol policy.Policy, chipSeed int64) *Engine {
	t.Helper()
	fx := testutil.NewFixture(t, chipSeed)
	e, err := New(cfg, pol, fx.Chip, fx.Thermal, fx.Power, fx.Predictor, fx.Table)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func hayatPolicy(t testing.TB) policy.Policy {
	t.Helper()
	h, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func vaaPolicy(t testing.TB) policy.Policy {
	t.Helper()
	v, err := baseline.New(baseline.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.DarkFraction = -0.1 },
		func(c *Config) { c.DarkFraction = 1.0 },
		func(c *Config) { c.Years = 0 },
		func(c *Config) { c.EpochYears = 0 },
		func(c *Config) { c.EpochYears = c.Years * 2 },
		func(c *Config) { c.WindowSeconds = 0 },
		func(c *Config) { c.StepSeconds = 0 },
		func(c *Config) { c.StepSeconds = c.WindowSeconds * 2 },
		func(c *Config) { c.DTMEverySteps = 0 },
		func(c *Config) { c.DTM = dtm.Config{} },
		func(c *Config) { c.MixApps = 0 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestNewRejectsNilDeps(t *testing.T) {
	fx := testutil.NewFixture(t, 1)
	cfg := shortConfig()
	if _, err := New(cfg, nil, fx.Chip, fx.Thermal, fx.Power, fx.Predictor, fx.Table); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := New(cfg, vaaPolicy(t), nil, fx.Thermal, fx.Power, fx.Predictor, fx.Table); err == nil {
		t.Error("nil chip accepted")
	}
}

func TestRunLifecycleBothPolicies(t *testing.T) {
	for _, pol := range []policy.Policy{hayatPolicy(t), vaaPolicy(t)} {
		e := newEngine(t, shortConfig(), pol, 1)
		res, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if res.Policy != pol.Name() {
			t.Errorf("policy name %q", res.Policy)
		}
		if len(res.Records) != 4 { // 1 year / 0.25
			t.Fatalf("%s: %d records, want 4", pol.Name(), len(res.Records))
		}
		for i, rec := range res.Records {
			if rec.Epoch != i {
				t.Errorf("record %d has epoch %d", i, rec.Epoch)
			}
			if math.Abs(rec.YearsElapsed-float64(i+1)*0.25) > 1e-9 {
				t.Errorf("record %d years %v", i, rec.YearsElapsed)
			}
			if rec.Mapped == 0 {
				t.Errorf("%s epoch %d mapped nothing", pol.Name(), i)
			}
			if rec.AvgTemp <= 318 || rec.PeakTemp < rec.AvgTemp {
				t.Errorf("epoch %d temps avg=%v peak=%v", i, rec.AvgTemp, rec.PeakTemp)
			}
			if rec.AvgIPS <= 0 {
				t.Errorf("epoch %d no throughput", i)
			}
		}
	}
}

func TestHealthMonotoneAndBounded(t *testing.T) {
	e := newEngine(t, shortConfig(), vaaPolicy(t), 2)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	prev := 1.0
	for _, rec := range res.Records {
		if rec.AvgHealth > prev+1e-12 {
			t.Fatalf("average health rose: %v → %v", prev, rec.AvgHealth)
		}
		if rec.MinHealth <= 0 || rec.MinHealth > rec.AvgHealth {
			t.Fatalf("bad min health %v (avg %v)", rec.MinHealth, rec.AvgHealth)
		}
		prev = rec.AvgHealth
	}
	// Powered cores must actually age within a year.
	if last := res.Records[len(res.Records)-1]; last.AvgHealth >= 1 {
		t.Fatal("no aging after a simulated year")
	}
	for i, f := range res.FinalFMax {
		if f > res.InitialFMax[i]+1 {
			t.Fatalf("core %d sped up with age", i)
		}
		if res.FinalHealth[i] <= 0 || res.FinalHealth[i] > 1 {
			t.Fatalf("core %d final health %v", i, res.FinalHealth[i])
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() *Result {
		e := newEngine(t, shortConfig(), hayatPolicy(t), 3)
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Records) != len(b.Records) {
		t.Fatal("record counts differ")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, a.Records[i], b.Records[i])
		}
	}
	for i := range a.FinalFMax {
		if a.FinalFMax[i] != b.FinalFMax[i] {
			t.Fatal("final fmax differs")
		}
	}
}

func TestDarkSiliconBudgetHeld(t *testing.T) {
	cfg := shortConfig()
	cfg.DarkFraction = 0.50
	e := newEngine(t, cfg, vaaPolicy(t), 4)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Records {
		if rec.Mapped > 32 {
			t.Fatalf("epoch %d powered %d cores with a 32-core budget", rec.Epoch, rec.Mapped)
		}
	}
}

func TestAvgFMaxAtInterpolation(t *testing.T) {
	e := newEngine(t, shortConfig(), vaaPolicy(t), 5)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	f0 := res.AvgFMaxAt(0)
	sum := 0.0
	for _, f := range res.InitialFMax {
		sum += f
	}
	if math.Abs(f0-sum/64) > 1 {
		t.Fatalf("AvgFMaxAt(0) = %v", f0)
	}
	// Interpolated value between epochs lies between the bracketing
	// records.
	r0, r1 := res.Records[0], res.Records[1]
	mid := res.AvgFMaxAt((r0.YearsElapsed + r1.YearsElapsed) / 2)
	lo, hi := math.Min(r0.AvgFMax, r1.AvgFMax), math.Max(r0.AvgFMax, r1.AvgFMax)
	if mid < lo-1 || mid > hi+1 {
		t.Fatalf("interpolated %v outside [%v, %v]", mid, lo, hi)
	}
	// Beyond the last record: final value.
	if got := res.AvgFMaxAt(99); math.Abs(got-res.Records[len(res.Records)-1].AvgFMax) > 1 {
		t.Fatalf("extrapolated %v", got)
	}
	// Monotone non-increasing overall.
	if res.AvgFMaxAt(1.0) > f0 {
		t.Fatal("aged average frequency above initial")
	}
}

func TestDTMAccounting(t *testing.T) {
	e := newEngine(t, shortConfig(), vaaPolicy(t), 6)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, rec := range res.Records {
		if rec.DTMEvents < 0 {
			t.Fatal("negative DTM count")
		}
		sum += rec.DTMEvents
	}
	if sum != res.TotalDTM.Events() {
		t.Fatalf("per-epoch DTM sum %d != total %d", sum, res.TotalDTM.Events())
	}
}

func TestRemixChangesWorkload(t *testing.T) {
	cfg := shortConfig()
	cfg.RemixEpochs = 1 // new mix each epoch
	e := newEngine(t, cfg, vaaPolicy(t), 7)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Mapped thread counts should not be identical across every epoch if
	// mixes vary (they could coincide; require at least one difference
	// across 4 epochs in mapped count or IPS).
	same := true
	for _, rec := range res.Records[1:] {
		if rec.Mapped != res.Records[0].Mapped || math.Abs(rec.AvgIPS-res.Records[0].AvgIPS) > 1e6 {
			same = false
		}
	}
	if same {
		t.Fatal("remixing produced identical workloads every epoch")
	}
}

func TestMalleabilityShrinksUnplaceableApps(t *testing.T) {
	cfg := shortConfig()
	cfg.RemixEpochs = 0 // keep one mix so adaptation is observable
	e := newEngine(t, cfg, vaaPolicy(t), 8)
	// Degrade the chip artificially by shrinking the budget hard: with
	// only 12 cores allowed and a mix sized for 12, any placement
	// failure must shrink K_j rather than repeat forever.
	cfg2 := cfg
	cfg2.DarkFraction = 1 - 12.0/64.0
	e2, err := New(cfg2, vaaPolicy(t), e.chip, e.tm, e.pm, e.pred, e.tab)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e2.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Unmapped counts must not grow over epochs (malleability adapts).
	first := res.Records[0].Unmapped
	last := res.Records[len(res.Records)-1].Unmapped
	if last > first {
		t.Fatalf("unmapped grew: %d → %d", first, last)
	}
}

func TestMalleabilityDisabled(t *testing.T) {
	cfg := shortConfig()
	cfg.Malleable = false
	e := newEngine(t, cfg, vaaPolicy(t), 9)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSensorNoiseZeroMeansNoViolations(t *testing.T) {
	e := newEngine(t, shortConfig(), hayatPolicy(t), 10)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Records {
		if rec.Violations != 0 {
			t.Fatalf("ideal sensors produced %d requirement violations", rec.Violations)
		}
	}
}

func TestSensorNoiseRunsAndStaysDeterministic(t *testing.T) {
	cfg := shortConfig()
	cfg.SensorNoiseSigma = 0.10
	run := func() *Result {
		e := newEngine(t, cfg, hayatPolicy(t), 11)
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("noisy run not deterministic at epoch %d", i)
		}
		if a.Records[i].Violations < 0 {
			t.Fatal("negative violations")
		}
	}
}

func TestSensorNoiseValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SensorNoiseSigma = -0.1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative noise accepted")
	}
}

func TestMigrationStallReducesThroughput(t *testing.T) {
	// Force DTM activity with a hot configuration (25% dark, VAA) and
	// compare delivered IPS with and without the migration cost model.
	base := shortConfig()
	base.DarkFraction = 0.125
	base.Years = 0.5
	withCost := base
	withCost.MigrationStallSeconds = 0.2 // exaggerated for visibility
	noCost := base
	noCost.MigrationStallSeconds = 0

	run := func(cfg Config) (*Result, int) {
		e := newEngine(t, cfg, vaaPolicy(t), 12)
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, res.TotalDTM.Migrations
	}
	rc, migC := run(withCost)
	rn, migN := run(noCost)
	if migN == 0 {
		t.Skip("no migrations triggered; scenario too cool on this chip")
	}
	_ = migC
	sum := func(r *Result) float64 {
		s := 0.0
		for _, rec := range r.Records {
			s += rec.AvgIPS
		}
		return s
	}
	if sum(rc) >= sum(rn) {
		t.Fatalf("stall model did not reduce throughput: %v vs %v", sum(rc), sum(rn))
	}
}

func TestMigrationStallValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MigrationStallSeconds = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative stall accepted")
	}
}

func TestTraceSinkReceivesSamples(t *testing.T) {
	cfg := shortConfig()
	cfg.Years = 0.25 // one epoch
	e := newEngine(t, cfg, vaaPolicy(t), 13)
	var buf strings.Builder
	sink := NewTSVTrace(&buf, []int{0, 5})
	if err := e.SetTrace(sink, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sink.Err() != nil {
		t.Fatal(sink.Err())
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 1 epoch × 50 steps sampled every 10 → 5 samples + header.
	if len(lines) != 6 {
		t.Fatalf("got %d trace lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "epoch\tstep\ttime_s\tT0_K\tP0_W\tT5_K\tP5_W") {
		t.Fatalf("bad header: %q", lines[0])
	}
	// Every data row has 3 + 2·2 fields.
	for _, l := range lines[1:] {
		if got := len(strings.Split(l, "\t")); got != 7 {
			t.Fatalf("row has %d fields: %q", got, l)
		}
	}
}

func TestSetTraceValidation(t *testing.T) {
	e := newEngine(t, shortConfig(), vaaPolicy(t), 13)
	if err := e.SetTrace(NewTSVTrace(&strings.Builder{}, nil), 0); err == nil {
		t.Fatal("zero interval accepted")
	}
	if err := e.SetTrace(nil, 0); err != nil {
		t.Fatalf("disabling trace failed: %v", err)
	}
}

func TestTraceOutOfRangeCore(t *testing.T) {
	cfg := shortConfig()
	cfg.Years = 0.25
	e := newEngine(t, cfg, vaaPolicy(t), 13)
	sink := NewTSVTrace(&strings.Builder{}, []int{999})
	if err := e.SetTrace(sink, 25); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sink.Err() == nil {
		t.Fatal("out-of-range core not reported")
	}
}

func TestDVFSLadderQuantisesFrequencies(t *testing.T) {
	cfg := shortConfig()
	ladder, err := dvfs.Uniform(1.0e9, 4.0e9, 7) // 0.5 GHz steps
	if err != nil {
		t.Fatal(err)
	}
	cfg.FreqLevels = ladder
	e := newEngine(t, cfg, hayatPolicy(t), 14)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The ladder cuts both ways: rounded-up frequencies retire more
	// instructions per second, but tighter eligibility can unmap threads
	// (the malleable apps then shrink). The run must stay functional and
	// in the same throughput regime as continuous DVFS.
	cont := shortConfig()
	e2 := newEngine(t, cont, hayatPolicy(t), 14)
	res2, err := e2.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Records {
		if res.Records[i].Mapped == 0 {
			t.Fatalf("epoch %d mapped nothing under DVFS ladder", i)
		}
		if res.Records[i].AvgIPS < res2.Records[i].AvgIPS*0.6 {
			t.Fatalf("epoch %d: ladder IPS %v collapsed vs continuous %v",
				i, res.Records[i].AvgIPS, res2.Records[i].AvgIPS)
		}
	}
}

func TestDVFSLadderValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FreqLevels = dvfs.Levels{2e9, 1e9}
	if err := cfg.Validate(); err == nil {
		t.Fatal("descending ladder accepted")
	}
}

func TestTurboBoostTradesAgingForThroughput(t *testing.T) {
	base := shortConfig()
	turbo := base
	turbo.TurboBoost = true
	turbo.TurboMarginK = 15
	run := func(cfg Config) *Result {
		e := newEngine(t, cfg, hayatPolicy(t), 15)
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rb, rt := run(base), run(turbo)
	sumIPS := func(r *Result) float64 {
		s := 0.0
		for _, rec := range r.Records {
			s += rec.AvgIPS
		}
		return s
	}
	if sumIPS(rt) <= sumIPS(rb) {
		t.Fatalf("turbo did not raise throughput: %v vs %v", sumIPS(rt), sumIPS(rb))
	}
	// ...and it costs health (faster aging via hotter, harder-driven cores).
	lastB := rb.Records[len(rb.Records)-1]
	lastT := rt.Records[len(rt.Records)-1]
	if lastT.AvgHealth >= lastB.AvgHealth {
		t.Fatalf("turbo did not accelerate aging: %v vs %v", lastT.AvgHealth, lastB.AvgHealth)
	}
	if lastT.AvgTemp <= lastB.AvgTemp {
		t.Fatalf("turbo did not raise temperatures: %v vs %v", lastT.AvgTemp, lastB.AvgTemp)
	}
}

func TestTurboValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TurboBoost = true
	cfg.TurboMarginK = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative turbo margin accepted")
	}
}

// The accelerated-aging abstraction of Fig. 4 must be robust to the epoch
// granularity: simulating the same lifetime in 3-month vs 6-month epochs
// should land at nearly the same final health (the up-scaling step, not
// the epoch count, carries the aging).
func TestEpochLengthConsistency(t *testing.T) {
	run := func(epochYears float64) *Result {
		cfg := DefaultConfig()
		cfg.Years = 2
		cfg.EpochYears = epochYears
		cfg.WindowSeconds = 1.0
		cfg.RemixEpochs = 0 // single mix so both runs see identical work
		e := newEngine(t, cfg, vaaPolicy(t), 16)
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	quarter := run(0.25)
	half := run(0.50)
	aq := quarter.Records[len(quarter.Records)-1].AvgHealth
	ah := half.Records[len(half.Records)-1].AvgHealth
	if d := math.Abs(aq - ah); d > 0.01 {
		t.Fatalf("epoch-length sensitivity too high: 3-month %.4f vs 6-month %.4f (Δ %.4f)", aq, ah, d)
	}
}

func TestThermalSwingRecorded(t *testing.T) {
	e := newEngine(t, shortConfig(), vaaPolicy(t), 20)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range res.Records {
		if rec.MaxSwing < 0 {
			t.Fatalf("epoch %d negative swing", i)
		}
		// Phase-driven power variation must produce a measurable swing.
		if rec.MaxSwing == 0 {
			t.Fatalf("epoch %d recorded no thermal cycling", i)
		}
		if rec.MaxSwing > rec.PeakTemp-318 {
			t.Fatalf("epoch %d swing %v exceeds total rise", i, rec.MaxSwing)
		}
	}
}
