package sim

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
)

// Checkpoint + Resume must reproduce the one-shot run exactly when no DTM
// transients straddle the boundary (50 % dark stays cool, so none do).
func TestCheckpointResumeMatchesOneShot(t *testing.T) {
	cfg := shortConfig() // 4 epochs, RemixEpochs 4 → boundary only at 0/4
	cfg.RemixEpochs = 2  // boundaries at 0 and 2
	mkEngine := func() *Engine { return newEngine(t, cfg, hayatPolicy(t), 17) }

	full, err := mkEngine().Run()
	if err != nil {
		t.Fatal(err)
	}

	e2 := mkEngine()
	cp, err := e2.RunCheckpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	if cp.NextEpoch != 2 || len(cp.Records) != 2 {
		t.Fatalf("checkpoint meta: %+v", cp)
	}
	// Serialise through JSON to prove the round trip.
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	cp2, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := mkEngine().Resume(cp2)
	if err != nil {
		t.Fatal(err)
	}

	if len(resumed.Records) != len(full.Records) {
		t.Fatalf("records: %d vs %d", len(resumed.Records), len(full.Records))
	}
	for i := range full.Records {
		if resumed.Records[i] != full.Records[i] {
			t.Fatalf("epoch %d differs:\n one-shot %+v\n resumed  %+v", i, full.Records[i], resumed.Records[i])
		}
	}
	for i := range full.FinalHealth {
		if resumed.FinalHealth[i] != full.FinalHealth[i] {
			t.Fatalf("final health differs at core %d", i)
		}
	}
	if resumed.TotalDTM != full.TotalDTM {
		t.Fatalf("DTM totals differ: %+v vs %+v", resumed.TotalDTM, full.TotalDTM)
	}
}

func TestCheckpointValidation(t *testing.T) {
	cfg := shortConfig()
	cfg.RemixEpochs = 2
	e := newEngine(t, cfg, hayatPolicy(t), 18)
	cp, err := e.RunCheckpoint(2)
	if err != nil {
		t.Fatal(err)
	}

	// Wrong chip.
	other := newEngine(t, cfg, hayatPolicy(t), 19)
	if _, err := other.Resume(cp); err == nil {
		t.Error("checkpoint accepted by a different chip")
	}
	// Wrong policy.
	vaa := newEngine(t, cfg, vaaPolicy(t), 18)
	if _, err := vaa.Resume(cp); err == nil {
		t.Error("checkpoint accepted by a different policy")
	}
	// Off-boundary epoch.
	bad := *cp
	bad.NextEpoch = 3
	bad.Records = append(bad.Records, EpochRecord{})
	if _, err := e.Resume(&bad); err == nil {
		t.Error("off-boundary checkpoint accepted")
	}
	// Corrupt health.
	bad2 := *cp
	bad2.Health = append([]float64(nil), cp.Health...)
	bad2.Health[0] = -1
	if _, err := e.Resume(&bad2); err == nil {
		t.Error("corrupt health accepted")
	}
	// Record/epoch mismatch.
	bad3 := *cp
	bad3.Records = cp.Records[:1]
	if _, err := e.Resume(&bad3); err == nil {
		t.Error("record mismatch accepted")
	}
	// RunCheckpoint range check.
	if _, err := e.RunCheckpoint(99); err == nil {
		t.Error("out-of-range checkpoint epoch accepted")
	}
}

func TestCheckpointUnsupportedWithoutRemix(t *testing.T) {
	cfg := shortConfig()
	cfg.RemixEpochs = 0
	e := newEngine(t, cfg, vaaPolicy(t), 18)
	if _, err := e.RunCheckpoint(2); err == nil {
		t.Fatal("mid-run checkpoint without remix boundaries accepted")
	}
	// Epoch 0 is fine (trivial checkpoint).
	cp, err := e.RunCheckpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Resume(cp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != e.Epochs() {
		t.Fatalf("%d records", len(res.Records))
	}
}

func TestReadCheckpointGarbage(t *testing.T) {
	if _, err := ReadCheckpoint(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

// A checkpointed run must call the sink at every eligible boundary and
// still produce the exact one-shot result; resuming from any of the
// emitted checkpoints must too.
func TestRunCheckpointedCadenceAndResume(t *testing.T) {
	cfg := shortConfig()
	cfg.Years = cfg.EpochYears * 8 // 8 epochs
	cfg.RemixEpochs = 2            // boundaries at 2, 4, 6
	mkEngine := func() *Engine { return newEngine(t, cfg, hayatPolicy(t), 21) }

	full, err := mkEngine().Run()
	if err != nil {
		t.Fatal(err)
	}

	var cps []*Checkpoint
	res, err := mkEngine().RunContextCheckpointed(context.Background(), 0, func(cp *Checkpoint) error {
		cps = append(cps, cp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 3 {
		t.Fatalf("sink called %d times, want 3 (epochs 2,4,6)", len(cps))
	}
	for i, want := range []int{2, 4, 6} {
		if cps[i].NextEpoch != want {
			t.Fatalf("checkpoint %d at epoch %d, want %d", i, cps[i].NextEpoch, want)
		}
	}
	if res.TotalDTM != full.TotalDTM || len(res.Records) != len(full.Records) {
		t.Fatalf("checkpointed run diverged from one-shot: %+v vs %+v", res.TotalDTM, full.TotalDTM)
	}
	for i := range full.Records {
		if res.Records[i] != full.Records[i] {
			t.Fatalf("epoch %d differs under checkpointing", i)
		}
	}

	// every=3 rounds up to a multiple of RemixEpochs (4): only epoch 4.
	count := 0
	if _, err := mkEngine().RunContextCheckpointed(context.Background(), 3, func(*Checkpoint) error {
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("every=3 (rounded to 4) called sink %d times, want 1", count)
	}

	// Resume from the middle checkpoint, with further checkpointing, and
	// require the exact one-shot result including carried DTM totals.
	var lateCps []*Checkpoint
	resumed, err := mkEngine().ResumeContextCheckpointed(context.Background(), cps[1], 0, func(cp *Checkpoint) error {
		lateCps = append(lateCps, cp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lateCps) != 1 || lateCps[0].NextEpoch != 6 {
		t.Fatalf("resume sink saw %d checkpoints, want one at epoch 6", len(lateCps))
	}
	for i := range full.Records {
		if resumed.Records[i] != full.Records[i] {
			t.Fatalf("resumed epoch %d differs from one-shot", i)
		}
	}
	if resumed.TotalDTM != full.TotalDTM {
		t.Fatalf("resumed DTM totals %+v, want %+v", resumed.TotalDTM, full.TotalDTM)
	}
	// The mid-resume checkpoint must itself resume to the same end state.
	again, err := mkEngine().Resume(lateCps[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range full.FinalHealth {
		if again.FinalHealth[i] != full.FinalHealth[i] {
			t.Fatalf("second-generation resume diverged at core %d", i)
		}
	}
}

func TestWriteCheckpointFileAtomic(t *testing.T) {
	cfg := shortConfig()
	cfg.RemixEpochs = 2
	e := newEngine(t, cfg, vaaPolicy(t), 23)
	cp, err := e.RunCheckpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	if err := WriteCheckpointFile(path, cp); err != nil {
		t.Fatal(err)
	}
	// No temp droppings next to the published file.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "run.ckpt" {
		t.Fatalf("directory not clean after atomic write: %v", entries)
	}
	got, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NextEpoch != cp.NextEpoch || got.ChipSeed != cp.ChipSeed || len(got.Records) != len(cp.Records) {
		t.Fatalf("file round trip mangled checkpoint: %+v", got)
	}
	// Overwrite must also be atomic (rename over the existing file).
	if err := WriteCheckpointFile(path, cp); err != nil {
		t.Fatalf("atomic overwrite failed: %v", err)
	}
	// Writing into a missing directory fails without leaving anything.
	if err := WriteCheckpointFile(filepath.Join(dir, "no-such-dir", "x.ckpt"), cp); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
	if _, err := ReadCheckpointFile(filepath.Join(dir, "missing.ckpt")); err == nil {
		t.Fatal("reading a missing checkpoint succeeded")
	}
}
