package sim

import (
	"bytes"
	"testing"
)

// Checkpoint + Resume must reproduce the one-shot run exactly when no DTM
// transients straddle the boundary (50 % dark stays cool, so none do).
func TestCheckpointResumeMatchesOneShot(t *testing.T) {
	cfg := shortConfig() // 4 epochs, RemixEpochs 4 → boundary only at 0/4
	cfg.RemixEpochs = 2  // boundaries at 0 and 2
	mkEngine := func() *Engine { return newEngine(t, cfg, hayatPolicy(t), 17) }

	full, err := mkEngine().Run()
	if err != nil {
		t.Fatal(err)
	}

	e2 := mkEngine()
	cp, err := e2.RunCheckpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	if cp.NextEpoch != 2 || len(cp.Records) != 2 {
		t.Fatalf("checkpoint meta: %+v", cp)
	}
	// Serialise through JSON to prove the round trip.
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	cp2, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := mkEngine().Resume(cp2)
	if err != nil {
		t.Fatal(err)
	}

	if len(resumed.Records) != len(full.Records) {
		t.Fatalf("records: %d vs %d", len(resumed.Records), len(full.Records))
	}
	for i := range full.Records {
		if resumed.Records[i] != full.Records[i] {
			t.Fatalf("epoch %d differs:\n one-shot %+v\n resumed  %+v", i, full.Records[i], resumed.Records[i])
		}
	}
	for i := range full.FinalHealth {
		if resumed.FinalHealth[i] != full.FinalHealth[i] {
			t.Fatalf("final health differs at core %d", i)
		}
	}
	if resumed.TotalDTM != full.TotalDTM {
		t.Fatalf("DTM totals differ: %+v vs %+v", resumed.TotalDTM, full.TotalDTM)
	}
}

func TestCheckpointValidation(t *testing.T) {
	cfg := shortConfig()
	cfg.RemixEpochs = 2
	e := newEngine(t, cfg, hayatPolicy(t), 18)
	cp, err := e.RunCheckpoint(2)
	if err != nil {
		t.Fatal(err)
	}

	// Wrong chip.
	other := newEngine(t, cfg, hayatPolicy(t), 19)
	if _, err := other.Resume(cp); err == nil {
		t.Error("checkpoint accepted by a different chip")
	}
	// Wrong policy.
	vaa := newEngine(t, cfg, vaaPolicy(t), 18)
	if _, err := vaa.Resume(cp); err == nil {
		t.Error("checkpoint accepted by a different policy")
	}
	// Off-boundary epoch.
	bad := *cp
	bad.NextEpoch = 3
	bad.Records = append(bad.Records, EpochRecord{})
	if _, err := e.Resume(&bad); err == nil {
		t.Error("off-boundary checkpoint accepted")
	}
	// Corrupt health.
	bad2 := *cp
	bad2.Health = append([]float64(nil), cp.Health...)
	bad2.Health[0] = -1
	if _, err := e.Resume(&bad2); err == nil {
		t.Error("corrupt health accepted")
	}
	// Record/epoch mismatch.
	bad3 := *cp
	bad3.Records = cp.Records[:1]
	if _, err := e.Resume(&bad3); err == nil {
		t.Error("record mismatch accepted")
	}
	// RunCheckpoint range check.
	if _, err := e.RunCheckpoint(99); err == nil {
		t.Error("out-of-range checkpoint epoch accepted")
	}
}

func TestCheckpointUnsupportedWithoutRemix(t *testing.T) {
	cfg := shortConfig()
	cfg.RemixEpochs = 0
	e := newEngine(t, cfg, vaaPolicy(t), 18)
	if _, err := e.RunCheckpoint(2); err == nil {
		t.Fatal("mid-run checkpoint without remix boundaries accepted")
	}
	// Epoch 0 is fine (trivial checkpoint).
	cp, err := e.RunCheckpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Resume(cp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != e.Epochs() {
		t.Fatalf("%d records", len(res.Records))
	}
}

func TestReadCheckpointGarbage(t *testing.T) {
	if _, err := ReadCheckpoint(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("garbage accepted")
	}
}
