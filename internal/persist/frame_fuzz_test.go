package persist

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame feeds arbitrary bytes to the buffer-frame decoder: it
// must accept or reject cleanly, never panic, and an accepted payload
// must round-trip byte-identically through EncodeFrame.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte(""))
	f.Add(EncodeFrame([]byte(`{"hello":"world"}`)))
	f.Add(EncodeFrame(nil))
	f.Add([]byte("hayatf1 00000000 0\n"))
	f.Add([]byte("hayatf1 deadbeef 5\nab"))
	f.Add([]byte("hayatf1 zzzzzzzz 3\nabc"))
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := DecodeFrame(data)
		if err != nil {
			return
		}
		again, err := DecodeFrame(EncodeFrame(payload))
		if err != nil {
			t.Fatalf("re-encoded accepted payload fails decode: %v", err)
		}
		if !bytes.Equal(again, payload) {
			t.Fatalf("frame round-trip changed payload: %q → %q", payload, again)
		}
	})
}

// FuzzDecodeFrameLine likewise for journal line frames.
func FuzzDecodeFrameLine(f *testing.F) {
	if line, err := EncodeFrameLine([]byte(`{"op":"submit","id":"job-000001"}`)); err == nil {
		f.Add(line)
	}
	f.Add([]byte(""))
	f.Add([]byte("hayatf1 00000000 "))
	f.Add([]byte("hayatf1 0000000g x"))
	f.Add([]byte("hayatf1  doublespace"))
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := DecodeFrameLine(data)
		if err != nil {
			return
		}
		line, err := EncodeFrameLine(payload)
		if err != nil {
			// Accepted payloads come from a single line, so they cannot
			// contain a newline.
			t.Fatalf("accepted line payload refuses re-encode: %v", err)
		}
		again, err := DecodeFrameLine(line)
		if err != nil {
			t.Fatalf("re-encoded accepted payload fails decode: %v", err)
		}
		if !bytes.Equal(again, payload) {
			t.Fatalf("line round-trip changed payload: %q → %q", payload, again)
		}
	})
}
