package persist

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/kit-ces/hayat/internal/faultinject"
)

// Failpoints on the framed-file seams (the store's durable tier).
const (
	fpFrameWrite = "persist.frame-write"
	fpFrameRead  = "persist.frame-read"
)

// WriteFramedFile atomically replaces path with a CRC-framed copy of
// payload: temp file in the same directory, write, fsync, rename — the
// same discipline as the journal, so a crash leaves either the old
// entry or the new one, never a torn frame.
func WriteFramedFile(path string, payload []byte) error {
	if err := faultinject.Hit(fpFrameWrite); err != nil {
		return fmt.Errorf("persist: framed write %s: %w", filepath.Base(path), err)
	}
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("persist: framed write %s: %w", base, err)
	}
	_, err = tmp.Write(EncodeFrame(payload))
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("persist: framed write %s: %w", base, err)
	}
	return nil
}

// ReadFramedFile reads and CRC-validates a framed file written by
// WriteFramedFile. Missing files surface os.IsNotExist errors; corrupt
// frames wrap ErrCorruptFrame.
func ReadFramedFile(path string) ([]byte, error) {
	if err := faultinject.Hit(fpFrameRead); err != nil {
		return nil, fmt.Errorf("persist: framed read %s: %w", filepath.Base(path), err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, err := DecodeFrame(raw)
	if err != nil {
		return nil, fmt.Errorf("persist: framed read %s: %w", filepath.Base(path), err)
	}
	return payload, nil
}
