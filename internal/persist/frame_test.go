package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{
		[]byte(""),
		[]byte("x"),
		[]byte(`{"hello":"world","n":42}` + "\nwith\nnewlines"),
		bytes.Repeat([]byte{0xFF, 0x00}, 1024),
	} {
		framed := EncodeFrame(payload)
		if !IsFramed(framed) {
			t.Fatalf("IsFramed = false for %q", framed[:16])
		}
		got, err := DecodeFrame(framed)
		if err != nil {
			t.Fatalf("DecodeFrame: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("payload mangled by round trip")
		}
	}
}

func TestFrameDetectsCorruption(t *testing.T) {
	payload := []byte(`{"result":"precious simulation output"}`)
	framed := EncodeFrame(payload)
	// Flip one bit at several positions: header, payload start, payload end.
	for _, pos := range []int{0, 9, len(framed) - len(payload), len(framed) - 1} {
		bad := append([]byte(nil), framed...)
		bad[pos] ^= 0x04
		if _, err := DecodeFrame(bad); !errors.Is(err, ErrCorruptFrame) {
			t.Errorf("bit flip at %d: err = %v, want ErrCorruptFrame", pos, err)
		}
	}
	// Truncation (torn write).
	for _, n := range []int{0, 5, len(framed) / 2, len(framed) - 1} {
		if _, err := DecodeFrame(framed[:n]); !errors.Is(err, ErrCorruptFrame) {
			t.Errorf("truncation to %d bytes: err = %v, want ErrCorruptFrame", n, err)
		}
	}
	// Trailing garbage appended after the payload.
	if _, err := DecodeFrame(append(append([]byte(nil), framed...), "junk"...)); !errors.Is(err, ErrCorruptFrame) {
		t.Error("trailing garbage accepted")
	}
	if _, err := DecodeFrame([]byte("not a frame at all")); !errors.Is(err, ErrCorruptFrame) {
		t.Error("unframed buffer accepted")
	}
}

func TestFrameLineRoundTripAndCorruption(t *testing.T) {
	payload := []byte(`{"op":"submit","id":"job-000001"}`)
	line, err := EncodeFrameLine(payload)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.IndexByte(line, '\n') >= 0 {
		t.Fatal("line frame contains a newline")
	}
	got, err := DecodeFrameLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("line payload mangled")
	}
	for _, pos := range []int{0, 10, len(line) - 1} {
		bad := append([]byte(nil), line...)
		bad[pos] ^= 0x01
		if _, err := DecodeFrameLine(bad); !errors.Is(err, ErrCorruptFrame) {
			t.Errorf("line bit flip at %d accepted (err=%v)", pos, err)
		}
	}
	if _, err := DecodeFrameLine(line[:len(line)/2]); !errors.Is(err, ErrCorruptFrame) {
		t.Error("torn line accepted")
	}
	if _, err := EncodeFrameLine([]byte("a\nb")); err == nil {
		t.Error("newline payload accepted by EncodeFrameLine")
	}
}

func TestQuarantine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "entry.json")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	q, err := Quarantine(path)
	if err != nil {
		t.Fatal(err)
	}
	if q != path+".corrupt" {
		t.Fatalf("quarantine path %q", q)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("original file still present after quarantine")
	}
	if data, err := os.ReadFile(q); err != nil || string(data) != "garbage" {
		t.Fatalf("quarantined content lost: %q, %v", data, err)
	}
	if _, err := Quarantine(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("quarantining a missing file succeeded")
	}
}
