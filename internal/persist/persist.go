// Package persist serialises chips and lifetime-simulation results to
// JSON so experiment campaigns can be archived, diffed and post-processed
// outside the simulator (cmd/hayatsim -json, cmd/chipgen -json).
package persist

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/kit-ces/hayat/internal/metrics"
	"github.com/kit-ces/hayat/internal/sim"
	"github.com/kit-ces/hayat/internal/variation"
)

// FormatVersion is embedded in every artefact so future readers can
// detect incompatible layouts.
const FormatVersion = 1

// ChipRecord is the serialisable description of one manufactured die.
type ChipRecord struct {
	Version    int       `json:"version"`
	Seed       int64     `json:"seed"`
	Rows       int       `json:"rows"`
	Cols       int       `json:"cols"`
	FMax0      []float64 `json:"fmax0_hz"`
	LeakFactor []float64 `json:"leak_factor"`
	MeanTheta  []float64 `json:"mean_theta"`
	// Spread is (max−min)/max of FMax0, stored for quick inspection.
	Spread float64 `json:"frequency_spread"`
}

// NewChipRecord captures a chip.
func NewChipRecord(c *variation.Chip) ChipRecord {
	return ChipRecord{
		Version:    FormatVersion,
		Seed:       c.Seed,
		Rows:       c.Floorplan.Rows,
		Cols:       c.Floorplan.Cols,
		FMax0:      append([]float64(nil), c.FMax0...),
		LeakFactor: append([]float64(nil), c.LeakFactor...),
		MeanTheta:  append([]float64(nil), c.MeanTheta...),
		Spread:     c.FrequencySpread(),
	}
}

// SaveChip writes the chip as indented JSON.
func SaveChip(w io.Writer, c *variation.Chip) error {
	return writeJSON(w, NewChipRecord(c))
}

// LoadChip reads a chip record and validates its structure.
func LoadChip(r io.Reader) (ChipRecord, error) {
	var rec ChipRecord
	if err := json.NewDecoder(r).Decode(&rec); err != nil {
		return ChipRecord{}, fmt.Errorf("persist: decoding chip: %w", err)
	}
	if err := rec.Validate(); err != nil {
		return ChipRecord{}, err
	}
	return rec, nil
}

// Validate checks structural consistency.
func (r ChipRecord) Validate() error {
	if r.Version != FormatVersion {
		return fmt.Errorf("persist: chip record version %d, want %d", r.Version, FormatVersion)
	}
	n := r.Rows * r.Cols
	if r.Rows <= 0 || r.Cols <= 0 {
		return fmt.Errorf("persist: invalid grid %d×%d", r.Rows, r.Cols)
	}
	if len(r.FMax0) != n || len(r.LeakFactor) != n || len(r.MeanTheta) != n {
		return fmt.Errorf("persist: chip arrays inconsistent with %d cores", n)
	}
	for i, f := range r.FMax0 {
		if f <= 0 {
			return fmt.Errorf("persist: core %d has non-positive frequency", i)
		}
	}
	return nil
}

// EpochRecord mirrors sim.EpochRecord with JSON tags.
type EpochRecord struct {
	Epoch        int     `json:"epoch"`
	YearsElapsed float64 `json:"years"`
	AvgHealth    float64 `json:"avg_health"`
	MinHealth    float64 `json:"min_health"`
	AvgFMax      float64 `json:"avg_fmax_hz"`
	MaxFMax      float64 `json:"max_fmax_hz"`
	AvgTemp      float64 `json:"avg_temp_k"`
	PeakTemp     float64 `json:"peak_temp_k"`
	DTMEvents    int     `json:"dtm_events"`
	Mapped       int     `json:"mapped"`
	Unmapped     int     `json:"unmapped"`
	AvgIPS       float64 `json:"avg_ips"`
}

// ResultRecord is the serialisable lifetime result.
type ResultRecord struct {
	Version      int           `json:"version"`
	Policy       string        `json:"policy"`
	ChipSeed     int64         `json:"chip_seed"`
	DarkFraction float64       `json:"dark_fraction"`
	Years        float64       `json:"years"`
	EpochYears   float64       `json:"epoch_years"`
	InitialFMax  []float64     `json:"initial_fmax_hz"`
	FinalFMax    []float64     `json:"final_fmax_hz"`
	FinalHealth  []float64     `json:"final_health"`
	Migrations   int           `json:"dtm_migrations"`
	Throttles    int           `json:"dtm_throttles"`
	Epochs       []EpochRecord `json:"epochs"`
}

// NewResultRecord captures a simulation result.
func NewResultRecord(res *sim.Result) ResultRecord {
	rec := ResultRecord{
		Version:      FormatVersion,
		Policy:       res.Policy,
		ChipSeed:     res.ChipSeed,
		DarkFraction: res.Config.DarkFraction,
		Years:        res.Config.Years,
		EpochYears:   res.Config.EpochYears,
		InitialFMax:  append([]float64(nil), res.InitialFMax...),
		FinalFMax:    append([]float64(nil), res.FinalFMax...),
		FinalHealth:  append([]float64(nil), res.FinalHealth...),
		Migrations:   res.TotalDTM.Migrations,
		Throttles:    res.TotalDTM.Throttles,
	}
	for _, e := range res.Records {
		rec.Epochs = append(rec.Epochs, EpochRecord{
			Epoch: e.Epoch, YearsElapsed: e.YearsElapsed,
			AvgHealth: e.AvgHealth, MinHealth: e.MinHealth,
			AvgFMax: e.AvgFMax, MaxFMax: e.MaxFMax,
			AvgTemp: e.AvgTemp, PeakTemp: e.PeakTemp,
			DTMEvents: e.DTMEvents, Mapped: e.Mapped, Unmapped: e.Unmapped,
			AvgIPS: e.AvgIPS,
		})
	}
	return rec
}

// SaveResult writes the result as indented JSON.
func SaveResult(w io.Writer, res *sim.Result) error {
	return writeJSON(w, NewResultRecord(res))
}

// LoadResult reads a result record and validates it.
func LoadResult(r io.Reader) (ResultRecord, error) {
	var rec ResultRecord
	if err := json.NewDecoder(r).Decode(&rec); err != nil {
		return ResultRecord{}, fmt.Errorf("persist: decoding result: %w", err)
	}
	if err := rec.Validate(); err != nil {
		return ResultRecord{}, err
	}
	return rec, nil
}

// Validate checks structural consistency.
func (r ResultRecord) Validate() error {
	if r.Version != FormatVersion {
		return fmt.Errorf("persist: result record version %d, want %d", r.Version, FormatVersion)
	}
	if r.Policy == "" {
		return fmt.Errorf("persist: result without policy name")
	}
	n := len(r.InitialFMax)
	if n == 0 || len(r.FinalFMax) != n || len(r.FinalHealth) != n {
		return fmt.Errorf("persist: per-core arrays inconsistent")
	}
	if len(r.Epochs) == 0 {
		return fmt.Errorf("persist: result without epochs")
	}
	prev := 0.0
	for i, e := range r.Epochs {
		if e.YearsElapsed <= prev {
			return fmt.Errorf("persist: epoch %d years not increasing", i)
		}
		prev = e.YearsElapsed
	}
	return nil
}

// PopulationRecord is the serialisable outcome of a population run: the
// aggregate quantities of Figs. 7–11 plus the per-chip lifetime results
// (in seed order).
type PopulationRecord struct {
	Version             int            `json:"version"`
	Policy              string         `json:"policy"`
	DarkFraction        float64        `json:"dark_fraction"`
	BaseSeed            int64          `json:"base_seed"`
	Chips               int            `json:"chips"`
	TotalDTMEvents      int            `json:"total_dtm_events"`
	MeanTempOverAmbient float64        `json:"mean_temp_over_ambient_k"`
	ChipFMaxAging       float64        `json:"chip_fmax_aging_hz"`
	AvgFMaxAging        float64        `json:"avg_fmax_aging_hz"`
	Years               []float64      `json:"years"`
	AvgFMaxSeries       []float64      `json:"avg_fmax_series_hz"`
	Results             []ResultRecord `json:"results"`
}

// NewPopulationRecord captures a population run from its raw per-chip
// results and their aggregate summary.
func NewPopulationRecord(baseSeed int64, raw []*sim.Result, sum metrics.Summary) PopulationRecord {
	rec := PopulationRecord{
		Version:             FormatVersion,
		Policy:              sum.Policy,
		DarkFraction:        sum.DarkFraction,
		BaseSeed:            baseSeed,
		Chips:               sum.Chips,
		TotalDTMEvents:      sum.TotalDTMEvents,
		MeanTempOverAmbient: sum.MeanTempOverAmbient,
		ChipFMaxAging:       sum.ChipFMaxAgingRate,
		AvgFMaxAging:        sum.AvgFMaxAgingRate,
		Years:               append([]float64(nil), sum.Years...),
		AvgFMaxSeries:       append([]float64(nil), sum.AvgFMaxSeries...),
	}
	for _, r := range raw {
		rec.Results = append(rec.Results, NewResultRecord(r))
	}
	return rec
}

// SavePopulation writes the population record as indented JSON.
func SavePopulation(w io.Writer, rec PopulationRecord) error {
	return writeJSON(w, rec)
}

// LoadPopulation reads a population record and validates it.
func LoadPopulation(r io.Reader) (PopulationRecord, error) {
	var rec PopulationRecord
	if err := json.NewDecoder(r).Decode(&rec); err != nil {
		return PopulationRecord{}, fmt.Errorf("persist: decoding population: %w", err)
	}
	if err := rec.Validate(); err != nil {
		return PopulationRecord{}, err
	}
	return rec, nil
}

// Validate checks structural consistency.
func (r PopulationRecord) Validate() error {
	if r.Version != FormatVersion {
		return fmt.Errorf("persist: population record version %d, want %d", r.Version, FormatVersion)
	}
	if r.Policy == "" {
		return fmt.Errorf("persist: population record without policy name")
	}
	if r.Chips <= 0 || len(r.Results) != r.Chips {
		return fmt.Errorf("persist: population record has %d results for %d chips", len(r.Results), r.Chips)
	}
	if len(r.Years) != len(r.AvgFMaxSeries) || len(r.Years) < 2 {
		return fmt.Errorf("persist: population series inconsistent (%d years, %d values)", len(r.Years), len(r.AvgFMaxSeries))
	}
	for i, res := range r.Results {
		if err := res.Validate(); err != nil {
			return fmt.Errorf("persist: population chip %d: %w", i, err)
		}
	}
	return nil
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("persist: encoding: %w", err)
	}
	return nil
}
