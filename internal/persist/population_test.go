package persist

import (
	"bytes"
	"strings"
	"testing"

	"github.com/kit-ces/hayat/internal/metrics"
	"github.com/kit-ces/hayat/internal/sim"
)

func testPopulation(t *testing.T) ([]*sim.Result, metrics.Summary) {
	t.Helper()
	raw := []*sim.Result{testResult(t)}
	sum, err := metrics.Summarize(raw, 318.15, 5)
	if err != nil {
		t.Fatal(err)
	}
	return raw, sum
}

func TestPopulationRoundTrip(t *testing.T) {
	raw, sum := testPopulation(t)
	rec := NewPopulationRecord(1, raw, sum)
	var buf bytes.Buffer
	if err := SavePopulation(&buf, rec); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPopulation(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Policy != sum.Policy || got.Chips != 1 || got.BaseSeed != 1 {
		t.Fatalf("meta mismatch: %+v", got)
	}
	if got.TotalDTMEvents != sum.TotalDTMEvents || got.AvgFMaxAging != sum.AvgFMaxAgingRate {
		t.Fatal("aggregate mismatch")
	}
	if len(got.Years) != len(sum.Years) || len(got.AvgFMaxSeries) != len(sum.AvgFMaxSeries) {
		t.Fatal("series length mismatch")
	}
	if len(got.Results) != 1 || got.Results[0].ChipSeed != raw[0].ChipSeed {
		t.Fatal("per-chip results mismatch")
	}
}

func TestPopulationValidation(t *testing.T) {
	raw, sum := testPopulation(t)
	good := NewPopulationRecord(1, raw, sum)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*PopulationRecord)
	}{
		{"version", func(r *PopulationRecord) { r.Version = 99 }},
		{"policy", func(r *PopulationRecord) { r.Policy = "" }},
		{"chips", func(r *PopulationRecord) { r.Chips = 2 }},
		{"series", func(r *PopulationRecord) { r.Years = r.Years[:1] }},
		{"result", func(r *PopulationRecord) { r.Results[0].Policy = "" }},
	}
	for _, c := range cases {
		rec := NewPopulationRecord(1, raw, sum)
		c.mut(&rec)
		if err := rec.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestLoadPopulationRejectsGarbage(t *testing.T) {
	if _, err := LoadPopulation(strings.NewReader("{")); err == nil {
		t.Fatal("truncated JSON should error")
	}
	if _, err := LoadPopulation(strings.NewReader(`{"version":1}`)); err == nil {
		t.Fatal("empty record should fail validation")
	}
}
