package persist

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoadChip feeds arbitrary bytes to the chip decoder: it must reject
// or accept cleanly, never panic, and anything accepted must re-validate.
func FuzzLoadChip(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"rows":1,"cols":1,"fmax0_hz":[1e9],"leak_factor":[1],"mean_theta":[1]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"version":1,"rows":-3}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := LoadChip(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := rec.Validate(); err != nil {
			t.Fatalf("accepted record fails Validate: %v", err)
		}
	})
}

// FuzzLoadResult likewise for lifetime results.
func FuzzLoadResult(f *testing.F) {
	f.Add(`{}`)
	f.Add(`{"version":1,"policy":"Hayat","initial_fmax_hz":[1],"final_fmax_hz":[1],"final_health":[1],"epochs":[{"epoch":0,"years":0.25}]}`)
	f.Add(`[1,2,3]`)
	f.Fuzz(func(t *testing.T, data string) {
		rec, err := LoadResult(strings.NewReader(data))
		if err != nil {
			return
		}
		if err := rec.Validate(); err != nil {
			t.Fatalf("accepted result fails Validate: %v", err)
		}
	})
}
