package persist

import (
	"bytes"
	"strings"
	"testing"

	"github.com/kit-ces/hayat/internal/baseline"
	"github.com/kit-ces/hayat/internal/floorplan"
	"github.com/kit-ces/hayat/internal/sim"
	"github.com/kit-ces/hayat/internal/testutil"
	"github.com/kit-ces/hayat/internal/variation"
)

func testChip(t *testing.T) *variation.Chip {
	t.Helper()
	gen, err := variation.NewGenerator(variation.DefaultModel(), floorplan.Default())
	if err != nil {
		t.Fatal(err)
	}
	return gen.Chip(7)
}

func TestChipRoundTrip(t *testing.T) {
	chip := testChip(t)
	var buf bytes.Buffer
	if err := SaveChip(&buf, chip); err != nil {
		t.Fatal(err)
	}
	rec, err := LoadChip(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seed != 7 || rec.Rows != 8 || rec.Cols != 8 {
		t.Fatalf("meta wrong: %+v", rec)
	}
	for i := range chip.FMax0 {
		if rec.FMax0[i] != chip.FMax0[i] || rec.LeakFactor[i] != chip.LeakFactor[i] {
			t.Fatalf("array mismatch at core %d", i)
		}
	}
	if rec.Spread != chip.FrequencySpread() {
		t.Fatalf("spread %v vs %v", rec.Spread, chip.FrequencySpread())
	}
}

func TestChipValidation(t *testing.T) {
	chip := testChip(t)
	rec := NewChipRecord(chip)
	cases := []func(*ChipRecord){
		func(r *ChipRecord) { r.Version = 99 },
		func(r *ChipRecord) { r.Rows = 0 },
		func(r *ChipRecord) { r.FMax0 = r.FMax0[:10] },
		func(r *ChipRecord) { r.FMax0[3] = -1 },
	}
	for i, mut := range cases {
		bad := rec
		bad.FMax0 = append([]float64(nil), rec.FMax0...)
		mut(&bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestLoadChipRejectsGarbage(t *testing.T) {
	if _, err := LoadChip(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadChip(strings.NewReader(`{"version":1,"rows":0}`)); err == nil {
		t.Fatal("invalid record accepted")
	}
}

func testResult(t *testing.T) *sim.Result {
	t.Helper()
	fx := testutil.NewFixture(t, 1)
	cfg := sim.DefaultConfig()
	cfg.Years = 0.5
	cfg.WindowSeconds = 1.0
	pol, err := baseline.New(baseline.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.New(cfg, pol, fx.Chip, fx.Thermal, fx.Power, fx.Predictor, fx.Table)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestResultRoundTrip(t *testing.T) {
	res := testResult(t)
	var buf bytes.Buffer
	if err := SaveResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	rec, err := LoadResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Policy != res.Policy || rec.ChipSeed != res.ChipSeed {
		t.Fatalf("meta mismatch: %+v", rec)
	}
	if len(rec.Epochs) != len(res.Records) {
		t.Fatalf("epoch count %d vs %d", len(rec.Epochs), len(res.Records))
	}
	for i, e := range rec.Epochs {
		r := res.Records[i]
		if e.AvgFMax != r.AvgFMax || e.DTMEvents != r.DTMEvents || e.YearsElapsed != r.YearsElapsed {
			t.Fatalf("epoch %d mismatch", i)
		}
	}
	if rec.Migrations != res.TotalDTM.Migrations || rec.Throttles != res.TotalDTM.Throttles {
		t.Fatal("DTM totals mismatch")
	}
}

func TestResultValidation(t *testing.T) {
	res := testResult(t)
	rec := NewResultRecord(res)
	cases := []func(*ResultRecord){
		func(r *ResultRecord) { r.Version = 0 },
		func(r *ResultRecord) { r.Policy = "" },
		func(r *ResultRecord) { r.FinalFMax = r.FinalFMax[:1] },
		func(r *ResultRecord) { r.Epochs = nil },
		func(r *ResultRecord) { r.Epochs[1].YearsElapsed = 0 },
	}
	for i, mut := range cases {
		bad := rec
		bad.FinalFMax = append([]float64(nil), rec.FinalFMax...)
		bad.Epochs = append([]EpochRecord(nil), rec.Epochs...)
		mut(&bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
