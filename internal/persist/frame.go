package persist

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"os"

	"github.com/kit-ces/hayat/internal/faultinject"
)

// fpQuarantine faults the corrupt-artefact rename so tests can exercise
// a quarantine that itself fails (e.g. read-only cache directory).
const fpQuarantine = "persist.quarantine"

// CRC framing for crash-safe artefacts: the service's write-ahead journal
// records and persisted cache/checkpoint files are wrapped in a frame so
// torn writes and bit rot are detected instead of being parsed as data.
//
// Buffer frames (whole files) carry a header line:
//
//	hayatf1 <crc32c hex8> <payload length>\n<payload>
//
// Line frames (journal records) keep the payload on the same line:
//
//	hayatf1 <crc32c hex8> <payload>
//
// Both use the Castagnoli polynomial over the payload bytes.

// FrameMagic tags framed artefacts; readers use it to tell framed from
// legacy content.
const FrameMagic = "hayatf1"

// ErrCorruptFrame is wrapped by every framing decode failure (bad magic,
// short header, CRC mismatch, truncated payload).
var ErrCorruptFrame = errors.New("persist: corrupt frame")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// EncodeFrame wraps payload in a CRC-framed envelope with a header line.
func EncodeFrame(payload []byte) []byte {
	header := fmt.Sprintf("%s %08x %d\n", FrameMagic, crc32.Checksum(payload, crcTable), len(payload))
	out := make([]byte, 0, len(header)+len(payload))
	out = append(out, header...)
	return append(out, payload...)
}

// DecodeFrame validates a framed buffer and returns its payload.
func DecodeFrame(b []byte) ([]byte, error) {
	header, payload, ok := bytes.Cut(b, []byte{'\n'})
	if !ok {
		return nil, fmt.Errorf("%w: missing header line", ErrCorruptFrame)
	}
	var crc uint32
	var n int
	if _, err := fmt.Sscanf(string(header), FrameMagic+" %08x %d", &crc, &n); err != nil {
		return nil, fmt.Errorf("%w: bad header %q", ErrCorruptFrame, truncate(header))
	}
	if len(payload) != n {
		return nil, fmt.Errorf("%w: payload %d bytes, header says %d", ErrCorruptFrame, len(payload), n)
	}
	if got := crc32.Checksum(payload, crcTable); got != crc {
		return nil, fmt.Errorf("%w: crc %08x, want %08x", ErrCorruptFrame, got, crc)
	}
	return payload, nil
}

// IsFramed reports whether b starts with the frame magic.
func IsFramed(b []byte) bool {
	return bytes.HasPrefix(b, []byte(FrameMagic+" "))
}

// EncodeFrameLine frames a single-line payload (no trailing newline is
// appended). The payload must not contain newlines.
func EncodeFrameLine(payload []byte) ([]byte, error) {
	if bytes.IndexByte(payload, '\n') >= 0 {
		return nil, errors.New("persist: line-frame payload contains a newline")
	}
	return []byte(fmt.Sprintf("%s %08x %s", FrameMagic, crc32.Checksum(payload, crcTable), payload)), nil
}

// DecodeFrameLine validates one framed line and returns its payload.
func DecodeFrameLine(line []byte) ([]byte, error) {
	rest, ok := bytes.CutPrefix(line, []byte(FrameMagic+" "))
	if !ok {
		return nil, fmt.Errorf("%w: bad line magic %q", ErrCorruptFrame, truncate(line))
	}
	crcHex, payload, ok := bytes.Cut(rest, []byte{' '})
	if !ok || len(crcHex) != 8 {
		return nil, fmt.Errorf("%w: bad line header %q", ErrCorruptFrame, truncate(line))
	}
	var crc uint32
	if _, err := fmt.Sscanf(string(crcHex), "%08x", &crc); err != nil {
		return nil, fmt.Errorf("%w: bad line crc %q", ErrCorruptFrame, crcHex)
	}
	if got := crc32.Checksum(payload, crcTable); got != crc {
		return nil, fmt.Errorf("%w: line crc %08x, want %08x", ErrCorruptFrame, got, crc)
	}
	return payload, nil
}

// Quarantine renames a corrupt artefact to <path>.corrupt (replacing any
// previous quarantine of the same path) so it is preserved for inspection
// but never re-read as data. It returns the quarantine path.
func Quarantine(path string) (string, error) {
	q := path + ".corrupt"
	if err := faultinject.Hit(fpQuarantine); err != nil {
		return "", fmt.Errorf("persist: quarantining %s: %w", path, err)
	}
	if err := os.Rename(path, q); err != nil {
		return "", fmt.Errorf("persist: quarantining %s: %w", path, err)
	}
	return q, nil
}

func truncate(b []byte) string {
	const max = 32
	if len(b) > max {
		return string(b[:max]) + "…"
	}
	return string(b)
}
