package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanAndStdDev(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty inputs must give 0")
	}
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(v); m != 5 {
		t.Fatalf("Mean = %v", m)
	}
	// Sample stddev of the classic example: sqrt(32/7).
	if s := StdDev(v); math.Abs(s-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Fatalf("StdDev = %v", s)
	}
	if StdDev([]float64{3}) != 0 {
		t.Fatal("single-sample stddev must be 0")
	}
}

func TestPercentile(t *testing.T) {
	v := []float64{15, 20, 35, 40, 50}
	cases := map[float64]float64{
		0:   15,
		50:  35,
		100: 50,
		25:  20,
		75:  40,
	}
	for p, want := range cases {
		if got := Percentile(v, p); math.Abs(got-want) > 1e-12 {
			t.Errorf("P%v = %v, want %v", p, got, want)
		}
	}
	// Interpolation between order statistics.
	if got := Percentile([]float64{10, 20}, 50); got != 15 {
		t.Errorf("median of {10,20} = %v", got)
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("single-element percentile = %v", got)
	}
	// Input must not be mutated (sorted copy).
	in := []float64{3, 1, 2}
	Percentile(in, 50)
	if in[0] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBootstrapMeanCI(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := make([]float64, 200)
	for i := range v {
		v[i] = 10 + rng.NormFloat64()
	}
	ci, err := BootstrapMeanCI(v, 0.95, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo >= ci.Hi {
		t.Fatalf("degenerate interval %+v", ci)
	}
	m := Mean(v)
	if m < ci.Lo || m > ci.Hi {
		t.Fatalf("sample mean %v outside its own CI %+v", m, ci)
	}
	// For N=200, σ=1 the 95 % CI half-width is ≈0.14; sanity band.
	if w := ci.Hi - ci.Lo; w < 0.1 || w > 0.5 {
		t.Fatalf("CI width %v implausible", w)
	}
	// Deterministic in seed.
	ci2, _ := BootstrapMeanCI(v, 0.95, 2000, 7)
	if ci != ci2 {
		t.Fatal("bootstrap not deterministic in seed")
	}
}

func TestBootstrapValidation(t *testing.T) {
	if _, err := BootstrapMeanCI(nil, 0.95, 100, 1); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := BootstrapMeanCI([]float64{1}, 1.5, 100, 1); err == nil {
		t.Error("bad confidence accepted")
	}
	if _, err := BootstrapMeanCI([]float64{1}, 0.95, 2, 1); err == nil {
		t.Error("too few resamples accepted")
	}
}

func TestDescribe(t *testing.T) {
	d := Describe([]float64{1, 2, 3, 4, 5})
	if d.N != 5 || d.Mean != 3 || d.Median != 3 || d.Min != 1 || d.Max != 5 {
		t.Fatalf("Describe = %+v", d)
	}
	if z := Describe(nil); z.N != 0 {
		t.Fatal("empty describe should be zero")
	}
}

// Property: P0 ≤ median ≤ P100 and the mean lies within [min, max].
func TestOrderingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64() * 100
		}
		d := Describe(v)
		return d.Min <= d.Median && d.Median <= d.Max &&
			d.Min <= d.Mean && d.Mean <= d.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
