package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/kit-ces/hayat/internal/numeric"
)

func TestMeanAndStdDev(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty inputs must give 0")
	}
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(v); m != 5 {
		t.Fatalf("Mean = %v", m)
	}
	// Sample stddev of the classic example: sqrt(32/7).
	if s := StdDev(v); math.Abs(s-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Fatalf("StdDev = %v", s)
	}
	if StdDev([]float64{3}) != 0 {
		t.Fatal("single-sample stddev must be 0")
	}
}

func TestPercentile(t *testing.T) {
	v := []float64{15, 20, 35, 40, 50}
	cases := map[float64]float64{
		0:   15,
		50:  35,
		100: 50,
		25:  20,
		75:  40,
	}
	for p, want := range cases {
		if got := Percentile(v, p); math.Abs(got-want) > 1e-12 {
			t.Errorf("P%v = %v, want %v", p, got, want)
		}
	}
	// Interpolation between order statistics.
	if got := Percentile([]float64{10, 20}, 50); got != 15 {
		t.Errorf("median of {10,20} = %v", got)
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("single-element percentile = %v", got)
	}
	// Input must not be mutated (sorted copy).
	in := []float64{3, 1, 2}
	Percentile(in, 50)
	if in[0] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBootstrapMeanCI(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := make([]float64, 200)
	for i := range v {
		v[i] = 10 + rng.NormFloat64()
	}
	ci, err := BootstrapMeanCI(v, 0.95, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo >= ci.Hi {
		t.Fatalf("degenerate interval %+v", ci)
	}
	m := Mean(v)
	if m < ci.Lo || m > ci.Hi {
		t.Fatalf("sample mean %v outside its own CI %+v", m, ci)
	}
	// For N=200, σ=1 the 95 % CI half-width is ≈0.14; sanity band.
	if w := ci.Hi - ci.Lo; w < 0.1 || w > 0.5 {
		t.Fatalf("CI width %v implausible", w)
	}
	// Deterministic in seed.
	ci2, _ := BootstrapMeanCI(v, 0.95, 2000, 7)
	if ci != ci2 {
		t.Fatal("bootstrap not deterministic in seed")
	}
}

func TestBootstrapValidation(t *testing.T) {
	if _, err := BootstrapMeanCI(nil, 0.95, 100, 1); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := BootstrapMeanCI([]float64{1}, 1.5, 100, 1); err == nil {
		t.Error("bad confidence accepted")
	}
	if _, err := BootstrapMeanCI([]float64{1}, 0.95, 2, 1); err == nil {
		t.Error("too few resamples accepted")
	}
}

func TestDescribe(t *testing.T) {
	d, err := Describe([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if d.N != 5 || d.Mean != 3 || d.Median != 3 || d.Min != 1 || d.Max != 5 {
		t.Fatalf("Describe = %+v", d)
	}
	z, err := Describe(nil)
	if err != nil || z.N != 0 {
		t.Fatalf("empty describe should be zero, got %+v, %v", z, err)
	}
}

// Non-finite inputs must be rejected, never silently propagated: a NaN
// sorts into an unspecified position and poisons every order statistic.
func TestNonFiniteRejection(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := map[string][]float64{
		"leading NaN":  {nan, 1, 2, 3},
		"trailing NaN": {1, 2, 3, nan},
		"+Inf":         {1, inf, 3},
		"-Inf":         {1, -inf, 3},
		"all NaN":      {nan, nan},
	}
	for name, v := range cases {
		if _, err := Describe(v); err == nil {
			t.Errorf("%s: Describe accepted non-finite input", name)
		} else if !errors.Is(err, numeric.ErrNonFinite) {
			t.Errorf("%s: Describe error %v does not wrap numeric.ErrNonFinite", name, err)
		}
		if _, err := BootstrapMeanCI(v, 0.95, 100, 1); err == nil {
			t.Errorf("%s: BootstrapMeanCI accepted non-finite input", name)
		} else if !errors.Is(err, numeric.ErrNonFinite) {
			t.Errorf("%s: BootstrapMeanCI error %v does not wrap numeric.ErrNonFinite", name, err)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Percentile did not panic", name)
				}
			}()
			Percentile(v, 50)
		}()
	}
}

// Large mean, tiny variance: the naive Σ(x−m)² form loses the variance
// to the rounding error of the first-pass mean, and the old ≤0 clamp
// flattened the result to exactly 0. The compensated form must recover
// the true spread.
func TestStdDevLargeMeanSmallVariance(t *testing.T) {
	const base = 1e9
	v := make([]float64, 1000)
	for i := range v {
		// Alternate ±0.5 around the huge base: true sample stddev is
		// ~0.50025 (n−1 denominator), independent of the offset.
		v[i] = base + 0.5*float64(1-2*(i%2))
	}
	got := StdDev(v)
	want := math.Sqrt(0.25 * 1000 / 999)
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("StdDev = %v, want %v (compensation failed)", got, want)
	}
	// Constant samples still report exactly 0, not a rounding residue.
	c := []float64{base, base, base, base}
	if got := StdDev(c); got != 0 {
		t.Fatalf("StdDev(constant) = %v, want 0", got)
	}
}

// Property: P0 ≤ median ≤ P100 and the mean lies within [min, max].
func TestOrderingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64() * 100
		}
		d, err := Describe(v)
		return err == nil &&
			d.Min <= d.Median && d.Median <= d.Max &&
			d.Min <= d.Mean && d.Mean <= d.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
