// Package stats provides the small statistical toolkit used to report
// chip-population results with uncertainty: means, standard deviations,
// percentiles and bootstrap confidence intervals. The paper's Figs. 7–10
// aggregate "25 different chips"; the bars this repository reports carry
// bootstrap intervals so shape claims are distinguishable from sampling
// noise.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/kit-ces/hayat/internal/numeric"
)

// errNonFinite wraps numeric.ErrNonFinite (the PR-3 hardening sentinel)
// so errors.Is(err, numeric.ErrNonFinite) works on stats errors too.
func errNonFinite(fn string) error {
	return fmt.Errorf("stats: %s: non-finite input: %w", fn, numeric.ErrNonFinite)
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// StdDev returns the sample standard deviation (n−1 denominator; 0 for
// fewer than two values). The sum of squared deviations uses the
// two-pass compensated form Σd² − (Σd)²/n (d = x − mean): the correction
// term removes the first-pass mean's rounding error, which for
// large-mean/small-variance samples otherwise produces a spuriously
// negative variance that the final clamp would silently flatten to 0.
func StdDev(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	sum, comp := 0.0, 0.0
	for _, x := range v {
		d := x - m
		sum += d * d
		comp += d
	}
	n := float64(len(v))
	variance := (sum - comp*comp/n) / (n - 1)
	if variance <= 0 {
		// Only exact-rounding residue can land here now (constant or
		// near-constant samples); true std dev is 0 to within precision.
		return 0
	}
	return math.Sqrt(variance)
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between order statistics. It panics on empty input,
// out-of-range p, or non-finite values: sort.Float64s leaves NaNs in
// unspecified positions, so order statistics over such input are
// garbage, and a quantile of ±Inf data is meaningless. Callers with
// untrusted data should validate first (as BootstrapMeanCI and Describe
// do, returning an error instead).
func Percentile(v []float64, p float64) float64 {
	if len(v) == 0 {
		panic("stats: percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v outside [0,100]", p))
	}
	if !numeric.AllFinite(v) {
		panic("stats: percentile of non-finite values")
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(pos)
	if lo == len(s)-1 {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo] + frac*(s[lo+1]-s[lo])
}

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo, Hi float64
}

// BootstrapMeanCI estimates a confidence interval for the mean by the
// percentile bootstrap: `resamples` resamples with replacement,
// deterministic in seed. confidence ∈ (0, 1), e.g. 0.95.
func BootstrapMeanCI(v []float64, confidence float64, resamples int, seed int64) (Interval, error) {
	if len(v) == 0 {
		return Interval{}, fmt.Errorf("stats: bootstrap of empty sample")
	}
	if confidence <= 0 || confidence >= 1 {
		return Interval{}, fmt.Errorf("stats: confidence %v outside (0,1)", confidence)
	}
	if resamples < 10 {
		return Interval{}, fmt.Errorf("stats: need ≥10 resamples, got %d", resamples)
	}
	if !numeric.AllFinite(v) {
		return Interval{}, errNonFinite("bootstrap")
	}
	rng := rand.New(rand.NewSource(seed))
	means := make([]float64, resamples)
	for r := range means {
		s := 0.0
		for i := 0; i < len(v); i++ {
			s += v[rng.Intn(len(v))]
		}
		means[r] = s / float64(len(v))
	}
	alpha := (1 - confidence) / 2 * 100
	return Interval{
		Lo: Percentile(means, alpha),
		Hi: Percentile(means, 100-alpha),
	}, nil
}

// Describe summarises a sample.
type Description struct {
	N                int
	Mean, StdDev     float64
	Min, Median, Max float64
}

// Describe computes the summary (zero value for empty input). Samples
// containing NaN or ±Inf yield an error wrapping numeric.ErrNonFinite:
// every field of the summary would otherwise be poisoned or silently
// wrong (NaNs additionally sort unpredictably in the median).
func Describe(v []float64) (Description, error) {
	if len(v) == 0 {
		return Description{}, nil
	}
	if !numeric.AllFinite(v) {
		return Description{}, errNonFinite("describe")
	}
	d := Description{
		N:      len(v),
		Mean:   Mean(v),
		StdDev: StdDev(v),
		Median: Percentile(v, 50),
	}
	d.Min, d.Max = v[0], v[0]
	for _, x := range v {
		if x < d.Min {
			d.Min = x
		}
		if x > d.Max {
			d.Max = x
		}
	}
	return d, nil
}
