package baseline

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/kit-ces/hayat/internal/mapping"
	"github.com/kit-ces/hayat/internal/policy"
	"github.com/kit-ces/hayat/internal/workload"
)

// This file adds two reference policies beyond the paper's VAA baseline.
// Neither appears in the paper; they bracket the policy space in
// experiments and ablations:
//
//   - Random: a frequency-feasible but otherwise arbitrary mapper — the
//     lower bound any run-time manager must beat.
//   - CoolestFirst: classic temperature-aware mapping (always pick the
//     coldest eligible core) with no aging awareness — it shows that
//     temperature-only management balances heat but squanders fast cores
//     and rotates stress, the gap Hayat's health/variation terms close.

// Random maps each thread to a uniformly random eligible core
// (deterministic in Seed).
type Random struct {
	Seed int64
}

// NewRandom builds the random mapper.
func NewRandom(seed int64) *Random { return &Random{Seed: seed} }

// Name implements policy.Policy.
func (r *Random) Name() string { return "Random" }

// Map implements policy.Policy.
func (r *Random) Map(ctx *policy.Context, threads []*workload.Thread) (policy.Result, error) {
	if err := ctx.Validate(); err != nil {
		return policy.Result{}, err
	}
	rng := rand.New(rand.NewSource(r.Seed))
	n := ctx.N()
	asg := mapping.New(n)
	var result policy.Result
	for _, t := range threads {
		if asg.NumAssigned() >= ctx.MaxOnCores {
			result.Unmapped = append(result.Unmapped, t)
			continue
		}
		reqF, feasible := ctx.RequiredFreq(t)
		if !feasible {
			result.Unmapped = append(result.Unmapped, t)
			continue
		}
		var eligible []int
		for c := 0; c < n; c++ {
			if asg.ThreadOn(c) == nil && ctx.FMax[c] >= reqF {
				eligible = append(eligible, c)
			}
		}
		if len(eligible) == 0 {
			result.Unmapped = append(result.Unmapped, t)
			continue
		}
		pick := eligible[rng.Intn(len(eligible))]
		if err := asg.Assign(t, pick); err != nil {
			return policy.Result{}, fmt.Errorf("random: %w", err)
		}
	}
	result.Assignment = asg
	return result, nil
}

// CoolestFirst maps the most demanding threads first, each to the coldest
// eligible core by the context's last measured temperatures.
type CoolestFirst struct{}

// NewCoolestFirst builds the temperature-only mapper.
func NewCoolestFirst() *CoolestFirst { return &CoolestFirst{} }

// Name implements policy.Policy.
func (c *CoolestFirst) Name() string { return "CoolestFirst" }

// Map implements policy.Policy.
func (c *CoolestFirst) Map(ctx *policy.Context, threads []*workload.Thread) (policy.Result, error) {
	if err := ctx.Validate(); err != nil {
		return policy.Result{}, err
	}
	n := ctx.N()
	asg := mapping.New(n)
	order := append([]*workload.Thread(nil), threads...)
	sort.SliceStable(order, func(i, j int) bool { return order[i].MinFreq() > order[j].MinFreq() })
	var result policy.Result
	for _, t := range order {
		if asg.NumAssigned() >= ctx.MaxOnCores {
			result.Unmapped = append(result.Unmapped, t)
			continue
		}
		reqF, feasible := ctx.RequiredFreq(t)
		if !feasible {
			result.Unmapped = append(result.Unmapped, t)
			continue
		}
		best := -1
		for cand := 0; cand < n; cand++ {
			if asg.ThreadOn(cand) != nil || ctx.FMax[cand] < reqF {
				continue
			}
			if best < 0 || ctx.Temps[cand] < ctx.Temps[best] {
				best = cand
			}
		}
		if best < 0 {
			result.Unmapped = append(result.Unmapped, t)
			continue
		}
		if err := asg.Assign(t, best); err != nil {
			return policy.Result{}, fmt.Errorf("coolest: %w", err)
		}
	}
	result.Assignment = asg
	return result, nil
}

var (
	_ policy.Policy = (*Random)(nil)
	_ policy.Policy = (*CoolestFirst)(nil)
)
