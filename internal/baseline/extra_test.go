package baseline

import (
	"testing"

	"github.com/kit-ces/hayat/internal/policy"
	"github.com/kit-ces/hayat/internal/testutil"
)

func runPolicy(t *testing.T, pol policy.Policy, chipSeed int64) (policy.Result, *policy.Context) {
	t.Helper()
	fx := testutil.NewFixture(t, chipSeed)
	ctx := fx.Context(0.50)
	threads := testutil.Threads(t, 3, ctx.MaxOnCores, 4)
	res, err := pol.Map(ctx, threads)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(); err != nil {
		t.Fatal(err)
	}
	return res, ctx
}

func TestRandomBasics(t *testing.T) {
	res, ctx := runPolicy(t, NewRandom(7), 1)
	if res.Assignment.NumAssigned() == 0 {
		t.Fatal("nothing mapped")
	}
	if res.Assignment.NumAssigned() > ctx.MaxOnCores {
		t.Fatal("budget exceeded")
	}
	for i := 0; i < res.Assignment.N(); i++ {
		if th := res.Assignment.ThreadOn(i); th != nil && ctx.FMax[i] < th.MinFreq() {
			t.Fatalf("core %d too slow for its thread", i)
		}
	}
}

func TestRandomDeterministicInSeed(t *testing.T) {
	layout := func(seed int64) []int {
		res, _ := runPolicy(t, NewRandom(seed), 2)
		var out []int
		for i := 0; i < res.Assignment.N(); i++ {
			if res.Assignment.ThreadOn(i) != nil {
				out = append(out, i)
			}
		}
		return out
	}
	a, b := layout(5), layout(5)
	if len(a) != len(b) {
		t.Fatal("same seed different sizes")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed different layout")
		}
	}
	c := layout(6)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds gave identical layouts (suspicious)")
	}
}

func TestCoolestFirstPicksColdCores(t *testing.T) {
	fx := testutil.NewFixture(t, 3)
	ctx := fx.Context(0.50)
	// Mark one half of the chip hot; the mapper must avoid it.
	for i := 0; i < 32; i++ {
		ctx.Temps[i] = 360
	}
	for i := 32; i < 64; i++ {
		ctx.Temps[i] = 320
	}
	threads := testutil.Threads(t, 3, 16, 3)
	pol := NewCoolestFirst()
	res, err := pol.Map(ctx, threads)
	if err != nil {
		t.Fatal(err)
	}
	hot := 0
	for i := 0; i < 32; i++ {
		if res.Assignment.ThreadOn(i) != nil {
			hot++
		}
	}
	// Only threads whose frequency requirement cannot be met in the cold
	// half may land hot.
	if hot > res.Assignment.NumAssigned()/3 {
		t.Fatalf("%d of %d threads landed on the hot half", hot, res.Assignment.NumAssigned())
	}
}

func TestExtraPoliciesRejectInvalidContext(t *testing.T) {
	fx := testutil.NewFixture(t, 1)
	ctx := fx.Context(0.50)
	ctx.TSafe = -1
	for _, pol := range []policy.Policy{NewRandom(1), NewCoolestFirst()} {
		if _, err := pol.Map(ctx, nil); err == nil {
			t.Errorf("%s accepted invalid context", pol.Name())
		}
	}
}

func TestExtraPoliciesReportUnmappable(t *testing.T) {
	fx := testutil.NewFixture(t, 1)
	ctx := fx.Context(0.50)
	for i := range ctx.FMax {
		ctx.FMax[i] = 1e8
	}
	threads := testutil.Threads(t, 3, ctx.MaxOnCores, 4)
	for _, pol := range []policy.Policy{NewRandom(1), NewCoolestFirst()} {
		res, err := pol.Map(ctx, threads)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Unmapped) != len(threads) || res.Assignment.NumAssigned() != 0 {
			t.Errorf("%s mapped threads onto a too-slow chip", pol.Name())
		}
	}
}
