// Package baseline implements VAA — the comparison partner of Section VI:
// the smart-hill-climbing contiguous mapping of Fattah et al. [28]
// ("Smart hill climbing for agile dynamic mapping in many-core systems",
// DAC 2013) extended, as the paper describes, to be variability- and
// aging-aware for maximum-throughput mapping: threads are only admitted to
// cores whose current (aged) maximum frequency satisfies their requirement,
// the mapping is refreshed with epoch knowledge, threads run at exactly
// their required frequency, and DTM/core-level frequency scaling and
// temperature-dependent leakage are handled identically to Hayat by the
// surrounding engine.
//
// The defining behavioural difference from Hayat is placement shape: VAA
// clusters threads contiguously around a seed region (minimising on-chip
// communication distance, the objective of [28]) and ignores the thermal
// and aging consequences of that clustering.
package baseline

import (
	"fmt"
	"sort"

	"github.com/kit-ces/hayat/internal/mapping"
	"github.com/kit-ces/hayat/internal/policy"
	"github.com/kit-ces/hayat/internal/workload"
)

// Config parameterises the VAA mapper.
type Config struct {
	// SeedRadius is the Manhattan radius used to score seed regions (the
	// "square factor" of [28]).
	SeedRadius int
}

// DefaultConfig returns the standard VAA settings.
func DefaultConfig() Config { return Config{SeedRadius: 2} }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SeedRadius < 1 {
		return fmt.Errorf("vaa: SeedRadius must be ≥1, got %d", c.SeedRadius)
	}
	return nil
}

// VAA is the baseline policy.
type VAA struct {
	cfg Config
}

// New builds a VAA policy. The config must validate.
func New(cfg Config) (*VAA, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &VAA{cfg: cfg}, nil
}

// Name implements policy.Policy.
func (v *VAA) Name() string { return "VAA" }

// Map implements the contiguous maximum-throughput mapping.
func (v *VAA) Map(ctx *policy.Context, threads []*workload.Thread) (policy.Result, error) {
	if err := ctx.Validate(); err != nil {
		return policy.Result{}, err
	}
	n := ctx.N()
	fp := ctx.Chip.Floorplan
	asg := mapping.New(n)

	// Most demanding threads first (maximum-throughput admission).
	order := append([]*workload.Thread(nil), threads...)
	sort.SliceStable(order, func(i, j int) bool { return order[i].MinFreq() > order[j].MinFreq() })

	// The demand the seed region must satisfy: the median requirement.
	var medianFreq float64
	if len(order) > 0 {
		medianFreq = order[len(order)/2].MinFreq()
	}

	// Seed selection (the hill-climbing start): the core with the densest
	// surrounding region of cores fast enough for the typical thread.
	seed := v.pickSeed(ctx, medianFreq)

	var result policy.Result
	for _, t := range order {
		if asg.NumAssigned() >= ctx.MaxOnCores {
			result.Unmapped = append(result.Unmapped, t)
			continue
		}
		reqF, feasible := ctx.RequiredFreq(t)
		if !feasible {
			result.Unmapped = append(result.Unmapped, t)
			continue
		}
		// Closest free eligible core to the seed; ties by higher fmax
		// (maximum-throughput flavour).
		best := -1
		bestDist := 1 << 30
		for c := 0; c < n; c++ {
			if asg.ThreadOn(c) != nil || ctx.FMax[c] < reqF {
				continue
			}
			d := fp.ManhattanDistance(seed, c)
			if d < bestDist || (d == bestDist && (best < 0 || ctx.FMax[c] > ctx.FMax[best])) {
				best, bestDist = c, d
			}
		}
		if best < 0 {
			result.Unmapped = append(result.Unmapped, t)
			continue
		}
		if err := asg.Assign(t, best); err != nil {
			return policy.Result{}, fmt.Errorf("vaa: %w", err)
		}
	}
	result.Assignment = asg
	return result, nil
}

// pickSeed scores every core by how many cores within SeedRadius can run a
// thread requiring minFreq, and returns the best-scoring core (ties to the
// lower index, matching the deterministic first-node search of [28]).
func (v *VAA) pickSeed(ctx *policy.Context, minFreq float64) int {
	fp := ctx.Chip.Floorplan
	n := ctx.N()
	best, bestScore := 0, -1
	for c := 0; c < n; c++ {
		if ctx.FMax[c] < minFreq {
			continue
		}
		score := 0
		for o := 0; o < n; o++ {
			if fp.ManhattanDistance(c, o) <= v.cfg.SeedRadius && ctx.FMax[o] >= minFreq {
				score++
			}
		}
		if score > bestScore {
			best, bestScore = c, score
		}
	}
	return best
}

var _ policy.Policy = (*VAA)(nil)
