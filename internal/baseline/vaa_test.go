package baseline

import (
	"testing"

	"github.com/kit-ces/hayat/internal/testutil"
)

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{SeedRadius: 0}).Validate(); err == nil {
		t.Error("SeedRadius 0 accepted")
	}
	if _, err := New(Config{SeedRadius: 0}); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestMapBasicInvariants(t *testing.T) {
	fx := testutil.NewFixture(t, 1)
	ctx := fx.Context(0.50)
	threads := testutil.Threads(t, 3, ctx.MaxOnCores, 4)
	v, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := v.Map(ctx, threads)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Assignment.NumAssigned()+len(res.Unmapped) != len(threads) {
		t.Fatal("thread accounting broken")
	}
	if res.Assignment.NumAssigned() > ctx.MaxOnCores {
		t.Fatalf("budget exceeded: %d > %d", res.Assignment.NumAssigned(), ctx.MaxOnCores)
	}
	for i := 0; i < res.Assignment.N(); i++ {
		if th := res.Assignment.ThreadOn(i); th != nil && ctx.FMax[i] < th.MinFreq() {
			t.Fatalf("core %d too slow for its thread", i)
		}
	}
	if res.Assignment.NumAssigned() == 0 {
		t.Fatal("nothing mapped")
	}
}

func TestMapIsContiguous(t *testing.T) {
	// VAA's defining behaviour: the powered cores form a tight cluster —
	// the average Manhattan nearest-neighbour distance must be ≈1.
	fx := testutil.NewFixture(t, 2)
	ctx := fx.Context(0.50)
	threads := testutil.Threads(t, 9, ctx.MaxOnCores, 4)
	v, _ := New(DefaultConfig())
	res, err := v.Map(ctx, threads)
	if err != nil {
		t.Fatal(err)
	}
	on := res.Assignment.DCM().OnCores(nil)
	if len(on) < 8 {
		t.Skipf("only %d cores mapped", len(on))
	}
	sum := 0.0
	for _, i := range on {
		min := 1 << 30
		for _, j := range on {
			if i == j {
				continue
			}
			if d := fx.FP.ManhattanDistance(i, j); d < min {
				min = d
			}
		}
		sum += float64(min)
	}
	if avg := sum / float64(len(on)); avg > 1.2 {
		t.Fatalf("average NN distance %.3f — VAA should cluster tightly", avg)
	}
}

func TestMapDeterministic(t *testing.T) {
	fx := testutil.NewFixture(t, 3)
	v, _ := New(DefaultConfig())
	run := func() []int {
		ctx := fx.Context(0.25)
		threads := testutil.Threads(t, 7, ctx.MaxOnCores, 4)
		res, err := v.Map(ctx, threads)
		if err != nil {
			t.Fatal(err)
		}
		var out []int
		for i := 0; i < res.Assignment.N(); i++ {
			if res.Assignment.ThreadOn(i) != nil {
				out = append(out, i)
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("non-deterministic size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic mapping")
		}
	}
}

func TestMapAgingAware(t *testing.T) {
	// The VAA extension: cores whose *aged* fmax is below a thread's
	// requirement must not be used, even if initially fast.
	fx := testutil.NewFixture(t, 4)
	ctx := fx.Context(0.50)
	threads := testutil.Threads(t, 3, ctx.MaxOnCores, 4)
	// Age every core to 50 % health: nothing can run ≥2 GHz threads
	// unless its aged fmax still allows it.
	for i := range ctx.FMax {
		ctx.FMax[i] = fx.Chip.FMax0[i] * 0.5
	}
	v, _ := New(DefaultConfig())
	res, err := v.Map(ctx, threads)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < res.Assignment.N(); i++ {
		if th := res.Assignment.ThreadOn(i); th != nil && ctx.FMax[i] < th.MinFreq() {
			t.Fatalf("aged-out core %d used", i)
		}
	}
}

func TestMapUnmappableReported(t *testing.T) {
	fx := testutil.NewFixture(t, 5)
	ctx := fx.Context(0.50)
	threads := testutil.Threads(t, 3, ctx.MaxOnCores, 4)
	for i := range ctx.FMax {
		ctx.FMax[i] = 1e8
	}
	v, _ := New(DefaultConfig())
	res, err := v.Map(ctx, threads)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unmapped) != len(threads) || res.Assignment.NumAssigned() != 0 {
		t.Fatal("slow cores should map nothing")
	}
}

func TestMapInvalidContextRejected(t *testing.T) {
	fx := testutil.NewFixture(t, 1)
	ctx := fx.Context(0.50)
	ctx.MaxOnCores = 0
	v, _ := New(DefaultConfig())
	if _, err := v.Map(ctx, nil); err == nil {
		t.Fatal("invalid context accepted")
	}
}
