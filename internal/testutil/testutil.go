// Package testutil builds fully wired chip contexts for the policy,
// simulation and benchmark tests. It lives in internal/ and must only be
// imported from _test.go files and bench harnesses.
package testutil

import (
	"testing"

	"github.com/kit-ces/hayat/internal/aging"
	"github.com/kit-ces/hayat/internal/floorplan"
	"github.com/kit-ces/hayat/internal/gates"
	"github.com/kit-ces/hayat/internal/policy"
	"github.com/kit-ces/hayat/internal/power"
	"github.com/kit-ces/hayat/internal/thermal"
	"github.com/kit-ces/hayat/internal/thermpredict"
	"github.com/kit-ces/hayat/internal/variation"
	"github.com/kit-ces/hayat/internal/workload"
)

// Fixture bundles everything a policy or engine test needs for one chip.
type Fixture struct {
	FP        *floorplan.Floorplan
	Thermal   *thermal.Model
	Power     power.Model
	Chip      *variation.Chip
	Predictor *thermpredict.Predictor
	CoreAging *aging.CoreAging
	Table     *aging.Table3D
}

// NewFixture wires the default models for the given chip seed. Heavy
// shared pieces (thermal model, aging table) are rebuilt per call; tests
// that need many chips should reuse one fixture's Table and Thermal.
func NewFixture(t testing.TB, chipSeed int64) *Fixture {
	t.Helper()
	fp := floorplan.Default()
	tm, err := thermal.New(fp, thermal.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	gen, err := variation.NewGenerator(variation.DefaultModel(), fp)
	if err != nil {
		t.Fatal(err)
	}
	chip := gen.Chip(chipSeed)
	pm := power.DefaultModel()
	pred, err := thermpredict.Learn(tm, pm, chip)
	if err != nil {
		t.Fatal(err)
	}
	ca := aging.NewCoreAging(aging.DefaultParams(), gates.Generate(gates.DefaultGenerateConfig(), chipSeed))
	return &Fixture{
		FP: fp, Thermal: tm, Power: pm, Chip: chip, Predictor: pred,
		CoreAging: ca, Table: aging.DefaultTable(ca),
	}
}

// Context builds a fresh unaged policy context with the given dark-silicon
// fraction.
func (f *Fixture) Context(darkFraction float64) *policy.Context {
	n := f.FP.N()
	health := make([]aging.State, n)
	fmax := make([]float64, n)
	temps := make([]float64, n)
	for i := 0; i < n; i++ {
		health[i] = aging.NewState()
		fmax[i] = f.Chip.FMax0[i]
		temps[i] = f.Thermal.Ambient()
	}
	return &policy.Context{
		Chip:         f.Chip,
		Predictor:    f.Predictor,
		AgingTable:   f.Table,
		PowerModel:   f.Power,
		TSafe:        368.15,
		MaxOnCores:   floorplan.MaxOnCores(n, darkFraction),
		HorizonYears: 0.25,
		DutyMode:     policy.DutyKnown,
		Health:       health,
		FMax:         fmax,
		Temps:        temps,
	}
}

// Threads generates a deterministic workload mix and returns its threads.
func Threads(t testing.TB, seed int64, maxThreads, apps int) []*workload.Thread {
	t.Helper()
	mix, err := workload.GenerateMix(workload.MixConfig{MaxThreads: maxThreads, Apps: apps}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return mix.Threads(nil)
}
