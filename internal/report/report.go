// Package report renders the paper's figures and tables as text: per-core
// heat maps (the frequency/temperature maps of Fig. 2 and Fig. 11 left),
// aligned tables (Fig. 2(o)), bar-style normalised comparisons
// (Figs. 7–10) and TSV series (Fig. 11 right).
package report

import (
	"fmt"
	"strings"
)

// shades orders the heat-map glyphs from coldest to hottest.
var shades = []rune(" .:-=+*#%@")

// HeatMap renders a per-core value grid. Values are normalised between
// lo and hi (auto-scaled when lo == hi); each cell shows one shade glyph.
func HeatMap(values []float64, rows, cols int, lo, hi float64) string {
	if rows*cols != len(values) {
		panic(fmt.Sprintf("report: %d values cannot render as %d×%d", len(values), rows, cols))
	}
	if lo == hi {
		lo, hi = values[0], values[0]
		for _, v := range values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	span := hi - lo
	var b strings.Builder
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := values[r*cols+c]
			idx := 0
			if span > 0 {
				idx = int((v - lo) / span * float64(len(shades)-1))
			}
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			b.WriteRune(shades[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// NumericMap renders a per-core grid of numbers with the given printf
// format (e.g. "%5.2f"), one row per line.
func NumericMap(values []float64, rows, cols int, format string) string {
	if rows*cols != len(values) {
		panic(fmt.Sprintf("report: %d values cannot render as %d×%d", len(values), rows, cols))
	}
	var b strings.Builder
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, format, values[r*cols+c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table renders an aligned text table. All rows must have the same number
// of cells as the header.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		if len(row) != len(header) {
			panic("report: ragged table row")
		}
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Bar renders a horizontal bar of the given value on a [0, max] scale
// (width glyph cells), annotated with the numeric value.
func Bar(label string, value, max float64, width int) string {
	if width < 1 {
		width = 1
	}
	fill := 0
	if max > 0 {
		fill = int(value / max * float64(width))
	}
	if fill < 0 {
		fill = 0
	}
	if fill > width {
		fill = width
	}
	return fmt.Sprintf("%-12s |%s%s| %.3f", label,
		strings.Repeat("█", fill), strings.Repeat(" ", width-fill), value)
}

// TSV renders columns as tab-separated values with a header row. All
// columns must have equal length.
func TSV(header []string, cols ...[]float64) string {
	if len(cols) != len(header) {
		panic("report: TSV header/column count mismatch")
	}
	n := 0
	for i, c := range cols {
		if i == 0 {
			n = len(c)
		} else if len(c) != n {
			panic("report: TSV ragged columns")
		}
	}
	var b strings.Builder
	b.WriteString(strings.Join(header, "\t"))
	b.WriteByte('\n')
	for r := 0; r < n; r++ {
		for i := range cols {
			if i > 0 {
				b.WriteByte('\t')
			}
			fmt.Fprintf(&b, "%g", cols[i][r])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
