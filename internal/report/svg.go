package report

import (
	"fmt"
	"math"
	"strings"
)

// This file renders the paper's figures as standalone SVG documents —
// line charts (Fig. 1(b), Fig. 11 right), bar charts (Figs. 7–10) and
// per-core heat maps (Fig. 2, Fig. 11 left) — using only the standard
// library. cmd/experiments -svg writes them to disk.

// svgPalette holds the series colours (colour-blind-safe Okabe–Ito).
var svgPalette = []string{
	"#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9", "#000000",
}

// Series is one named line of a chart.
type Series struct {
	Name string
	X, Y []float64
}

// SVGLineChart renders series as a line chart with axes, ticks and a
// legend. It panics on ragged series and returns a complete SVG document.
func SVGLineChart(title, xlabel, ylabel string, series []Series) string {
	const (
		w, h          = 640, 420
		mLeft, mRight = 70, 20
		mTop, mBottom = 40, 55
		plotW, plotH  = w - mLeft - mRight, h - mTop - mBottom
	)
	if len(series) == 0 {
		panic("report: SVGLineChart without series")
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.X) != len(s.Y) || len(s.X) == 0 {
			panic("report: ragged or empty series " + s.Name)
		}
		for i := range s.X {
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// A little vertical headroom.
	pad := (ymax - ymin) * 0.05
	ymin -= pad
	ymax += pad

	px := func(x float64) float64 { return mLeft + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return mTop + (1-(y-ymin)/(ymax-ymin))*plotH }

	var b strings.Builder
	svgHeader(&b, w, h)
	fmt.Fprintf(&b, `<text x="%d" y="24" text-anchor="middle" font-size="16" font-family="sans-serif">%s</text>`+"\n", w/2, svgEscape(title))

	// Axes.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#333"/>`+"\n", mLeft, mTop, plotW, plotH)
	// Ticks: 5 per axis.
	for i := 0; i <= 5; i++ {
		xv := xmin + (xmax-xmin)*float64(i)/5
		yv := ymin + (ymax-ymin)*float64(i)/5
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#333"/>`+"\n",
			px(xv), mTop+plotH, px(xv), mTop+plotH+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" font-size="11" font-family="sans-serif">%s</text>`+"\n",
			px(xv), mTop+plotH+18, svgNum(xv))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#333"/>`+"\n",
			mLeft-5, py(yv), mLeft, py(yv))
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" font-size="11" font-family="sans-serif">%s</text>`+"\n",
			mLeft-8, py(yv)+4, svgNum(yv))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" font-size="13" font-family="sans-serif">%s</text>`+"\n",
		mLeft+plotW/2, h-12, svgEscape(xlabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" text-anchor="middle" font-size="13" font-family="sans-serif" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		mTop+plotH/2, mTop+plotH/2, svgEscape(ylabel))

	// Lines.
	for si, s := range series {
		colour := svgPalette[si%len(svgPalette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), colour)
		// Legend.
		ly := mTop + 14 + si*18
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="3"/>`+"\n",
			mLeft+plotW-130, ly, mLeft+plotW-105, ly, colour)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" font-family="sans-serif">%s</text>`+"\n",
			mLeft+plotW-100, ly+4, svgEscape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// SVGBarChart renders labelled value pairs (e.g. the Hayat/VAA normalised
// ratios of Figs. 7–10). A reference line is drawn at ref when ref > 0.
func SVGBarChart(title string, labels []string, values []float64, ref float64) string {
	if len(labels) != len(values) || len(labels) == 0 {
		panic("report: SVGBarChart label/value mismatch")
	}
	const (
		w, h          = 640, 360
		mLeft, mRight = 160, 30
		mTop, mBottom = 40, 30
	)
	plotW := w - mLeft - mRight
	plotH := h - mTop - mBottom
	vmax := ref
	for _, v := range values {
		if v > vmax {
			vmax = v
		}
	}
	if vmax <= 0 {
		vmax = 1
	}
	vmax *= 1.1
	barH := plotH / len(labels)

	var b strings.Builder
	svgHeader(&b, w, h)
	fmt.Fprintf(&b, `<text x="%d" y="24" text-anchor="middle" font-size="16" font-family="sans-serif">%s</text>`+"\n", w/2, svgEscape(title))
	for i := range labels {
		y := mTop + i*barH
		bw := values[i] / vmax * float64(plotW)
		colour := svgPalette[i%len(svgPalette)]
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.1f" height="%d" fill="%s" opacity="0.85"/>`+"\n",
			mLeft, y+4, bw, barH-8, colour)
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end" font-size="12" font-family="sans-serif">%s</text>`+"\n",
			mLeft-8, y+barH/2+4, svgEscape(labels[i]))
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="12" font-family="sans-serif">%.3f</text>`+"\n",
			mLeft+bw+6, y+barH/2+4, values[i])
	}
	if ref > 0 {
		x := mLeft + ref/vmax*float64(plotW)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#999" stroke-dasharray="5,4"/>`+"\n",
			x, mTop, x, mTop+plotH)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" font-size="11" font-family="sans-serif" fill="#666">%s</text>`+"\n",
			x, mTop-6, svgNum(ref))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// SVGHeatMap renders a per-core value grid with a blue→red colour ramp
// and a numeric scale; lo == hi auto-scales.
func SVGHeatMap(title string, values []float64, rows, cols int, lo, hi float64) string {
	if rows*cols != len(values) {
		panic(fmt.Sprintf("report: %d values cannot render as %d×%d", len(values), rows, cols))
	}
	if lo == hi {
		lo, hi = values[0], values[0]
		for _, v := range values {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		if lo == hi {
			hi = lo + 1
		}
	}
	const cell = 46
	w := cols*cell + 140
	h := rows*cell + 60
	var b strings.Builder
	svgHeader(&b, w, h)
	fmt.Fprintf(&b, `<text x="%d" y="24" text-anchor="middle" font-size="15" font-family="sans-serif">%s</text>`+"\n", w/2, svgEscape(title))
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := values[r*cols+c]
			fr := (v - lo) / (hi - lo)
			if fr < 0 {
				fr = 0
			}
			if fr > 1 {
				fr = 1
			}
			x := 20 + c*cell
			y := 40 + r*cell
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#fff"/>`+"\n",
				x, y, cell, cell, rampColour(fr))
			fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" font-size="10" font-family="sans-serif" fill="%s">%s</text>`+"\n",
				x+cell/2, y+cell/2+4, textColour(fr), svgNum(v))
		}
	}
	// Colour-bar legend.
	lx := 20 + cols*cell + 20
	for i := 0; i < 10; i++ {
		fr := 1 - float64(i)/9
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="18" height="%d" fill="%s"/>`+"\n",
			lx, 40+i*(rows*cell)/10, (rows*cell)/10+1, rampColour(fr))
	}
	fmt.Fprintf(&b, `<text x="%d" y="36" font-size="11" font-family="sans-serif">%s</text>`+"\n", lx, svgNum(hi))
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" font-family="sans-serif">%s</text>`+"\n", lx, 40+rows*cell+14, svgNum(lo))
	b.WriteString("</svg>\n")
	return b.String()
}

// rampColour maps [0,1] onto a blue→yellow→red ramp.
func rampColour(f float64) string {
	// 0 → blue (59,76,192), 0.5 → pale yellow (240,230,140), 1 → red (180,4,38)
	var r, g, bb float64
	if f < 0.5 {
		t := f * 2
		r = 59 + t*(240-59)
		g = 76 + t*(230-76)
		bb = 192 + t*(140-192)
	} else {
		t := (f - 0.5) * 2
		r = 240 + t*(180-240)
		g = 230 + t*(4-230)
		bb = 140 + t*(38-140)
	}
	return fmt.Sprintf("#%02x%02x%02x", int(r), int(g), int(bb))
}

// textColour keeps cell labels readable against the ramp.
func textColour(f float64) string {
	if f > 0.75 || f < 0.2 {
		return "#ffffff"
	}
	return "#222222"
}

func svgHeader(b *strings.Builder, w, h int) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="#ffffff"/>`+"\n", w, h)
}

func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func svgNum(v float64) string {
	a := math.Abs(v)
	switch {
	case a >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case a >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case a >= 100:
		return fmt.Sprintf("%.0f", v)
	case a >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}
