package report

import (
	"strings"
	"testing"
)

func TestSVGLineChartWellFormed(t *testing.T) {
	out := SVGLineChart("Fig. 11", "years", "GHz", []Series{
		{Name: "Hayat", X: []float64{0, 5, 10}, Y: []float64{3.0, 2.7, 2.5}},
		{Name: "VAA", X: []float64{0, 5, 10}, Y: []float64{3.0, 2.6, 2.4}},
	})
	for _, want := range []string{"<svg", "</svg>", "polyline", "Hayat", "VAA", "years", "GHz"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in SVG", want)
		}
	}
	if strings.Count(out, "<polyline") != 2 {
		t.Fatal("expected two polylines")
	}
}

func TestSVGLineChartDegenerateRanges(t *testing.T) {
	// Constant series must not divide by zero.
	out := SVGLineChart("flat", "x", "y", []Series{
		{Name: "c", X: []float64{1, 1}, Y: []float64{5, 5}},
	})
	if !strings.Contains(out, "</svg>") {
		t.Fatal("degenerate chart incomplete")
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatal("degenerate chart produced NaN/Inf coordinates")
	}
}

func TestSVGLineChartPanics(t *testing.T) {
	cases := []func(){
		func() { SVGLineChart("t", "x", "y", nil) },
		func() { SVGLineChart("t", "x", "y", []Series{{Name: "r", X: []float64{1}, Y: []float64{1, 2}}}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestSVGBarChart(t *testing.T) {
	out := SVGBarChart("Fig. 7", []string{"Hayat", "VAA"}, []float64{0.28, 1.0}, 1.0)
	for _, want := range []string{"<svg", "Hayat", "VAA", "0.280", "1.000", "stroke-dasharray"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched labels accepted")
		}
	}()
	SVGBarChart("t", []string{"a"}, []float64{1, 2}, 0)
}

func TestSVGHeatMap(t *testing.T) {
	vals := make([]float64, 16)
	for i := range vals {
		vals[i] = float64(i)
	}
	out := SVGHeatMap("temps", vals, 4, 4, 0, 0)
	if strings.Count(out, "<rect") < 16 {
		t.Fatal("missing cells")
	}
	if !strings.Contains(out, "</svg>") {
		t.Fatal("incomplete document")
	}
	// Uniform values auto-scale without NaN.
	out = SVGHeatMap("flat", []float64{2, 2, 2, 2}, 2, 2, 0, 0)
	if strings.Contains(out, "NaN") {
		t.Fatal("uniform map produced NaN")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch accepted")
		}
	}()
	SVGHeatMap("t", vals, 3, 3, 0, 0)
}

func TestRampColourEndpoints(t *testing.T) {
	if rampColour(0) != "#3b4cc0" {
		t.Errorf("cold endpoint = %s", rampColour(0))
	}
	if rampColour(1) != "#b40426" {
		t.Errorf("hot endpoint = %s", rampColour(1))
	}
	// Midpoint is the pale yellow.
	if rampColour(0.5) != "#f0e68c" {
		t.Errorf("midpoint = %s", rampColour(0.5))
	}
}

func TestSvgNumScales(t *testing.T) {
	cases := map[float64]string{
		3.2e9:  "3.20G",
		4.5e6:  "4.5M",
		345.6:  "346",
		2.345:  "2.35",
		0.1234: "0.123",
	}
	for in, want := range cases {
		if got := svgNum(in); got != want {
			t.Errorf("svgNum(%v) = %q, want %q", in, got, want)
		}
	}
}
