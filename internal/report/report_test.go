package report

import (
	"strings"
	"testing"
)

func TestHeatMapShape(t *testing.T) {
	vals := []float64{0, 1, 2, 3}
	out := HeatMap(vals, 2, 2, 0, 3)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 || len([]rune(lines[0])) != 2 {
		t.Fatalf("unexpected shape:\n%s", out)
	}
	// Coldest cell renders the first shade, hottest the last.
	if []rune(lines[0])[0] != ' ' {
		t.Errorf("coldest glyph = %q", []rune(lines[0])[0])
	}
	if []rune(lines[1])[1] != '@' {
		t.Errorf("hottest glyph = %q", []rune(lines[1])[1])
	}
}

func TestHeatMapAutoScaleAndUniform(t *testing.T) {
	// Auto-scale (lo == hi): must not panic and must span shades.
	out := HeatMap([]float64{300, 350}, 1, 2, 0, 0)
	if !strings.ContainsRune(out, '@') {
		t.Errorf("auto-scaled map lacks hottest glyph: %q", out)
	}
	// All-equal values: single shade, no panic.
	out = HeatMap([]float64{5, 5, 5, 5}, 2, 2, 0, 0)
	if strings.TrimRight(out, "\n") != "  \n  "[0:2]+"\n"+"  " {
		// Just check it's two lines of two identical glyphs.
		lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
		if len(lines) != 2 || lines[0] != lines[1] {
			t.Errorf("uniform map irregular: %q", out)
		}
	}
}

func TestHeatMapClampsOutOfRange(t *testing.T) {
	out := HeatMap([]float64{-10, 999}, 1, 2, 0, 1)
	runes := []rune(strings.TrimRight(out, "\n"))
	if runes[0] != ' ' || runes[1] != '@' {
		t.Fatalf("clamping failed: %q", out)
	}
}

func TestHeatMapPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	HeatMap([]float64{1, 2, 3}, 2, 2, 0, 1)
}

func TestNumericMap(t *testing.T) {
	out := NumericMap([]float64{1, 2, 3, 4}, 2, 2, "%.1f")
	want := "1.0 2.0\n3.0 4.0\n"
	if out != want {
		t.Fatalf("NumericMap = %q, want %q", out, want)
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"Policy", "Events"}, [][]string{
		{"Hayat", "3"},
		{"VAA", "1398"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	// All lines equal width.
	w := len(lines[0])
	for i, l := range lines {
		if len(l) > w+1 {
			t.Errorf("line %d much wider than header: %q", i, l)
		}
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("missing separator: %q", lines[1])
	}
	if !strings.Contains(out, "1398") {
		t.Error("cell content missing")
	}
}

func TestTablePanicsOnRaggedRows(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Table([]string{"a", "b"}, [][]string{{"only-one"}})
}

func TestBar(t *testing.T) {
	out := Bar("Hayat", 0.5, 1.0, 10)
	if !strings.Contains(out, "█████") {
		t.Errorf("bar fill wrong: %q", out)
	}
	if !strings.Contains(out, "0.500") {
		t.Errorf("bar value missing: %q", out)
	}
	// Overflow clamps.
	out = Bar("x", 5, 1, 4)
	if strings.Count(out, "█") != 4 {
		t.Errorf("overflow not clamped: %q", out)
	}
	// Zero max doesn't divide by zero.
	out = Bar("x", 1, 0, 4)
	if !strings.Contains(out, "|") {
		t.Errorf("zero-max bar: %q", out)
	}
}

func TestTSV(t *testing.T) {
	out := TSV([]string{"year", "ghz"}, []float64{0, 1}, []float64{3, 2.9})
	want := "year\tghz\n0\t3\n1\t2.9\n"
	if out != want {
		t.Fatalf("TSV = %q, want %q", out, want)
	}
}

func TestTSVPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TSV([]string{"a"}, []float64{1}, []float64{2})
}
