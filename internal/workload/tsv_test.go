package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestProfileTSVRoundTrip(t *testing.T) {
	for _, p := range Parsec() {
		var buf bytes.Buffer
		if err := WriteProfileTSV(&buf, p); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		got, err := ReadProfileTSV(&buf)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if got.Name != p.Name || got.MinThreads != p.MinThreads ||
			got.MaxThreads != p.MaxThreads || got.MinFreq != p.MinFreq {
			t.Fatalf("%s: metadata mismatch: %+v", p.Name, got)
		}
		if len(got.Phases) != len(p.Phases) {
			t.Fatalf("%s: %d phases, want %d", p.Name, len(got.Phases), len(p.Phases))
		}
		for i := range got.Phases {
			if got.Phases[i] != p.Phases[i] {
				t.Fatalf("%s phase %d: %+v vs %+v", p.Name, i, got.Phases[i], p.Phases[i])
			}
		}
	}
}

func TestReadProfileTSVHandWritten(t *testing.T) {
	src := `
# profile mytrace minthreads 2 maxthreads 8 minfreq_ghz 2.4
# duration_s activity duty ipc
0.5  0.9  0.8  1.5
1.0  0.4  0.3  0.7
`
	p, err := ReadProfileTSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "mytrace" || p.MinThreads != 2 || p.MaxThreads != 8 || p.MinFreq != 2.4e9 {
		t.Fatalf("metadata: %+v", p)
	}
	if len(p.Phases) != 2 || p.Phases[1].IPC != 0.7 {
		t.Fatalf("phases: %+v", p.Phases)
	}
	// And it is immediately usable as an application.
	app, err := NewApp(p, 0, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(app.Threads) != 4 {
		t.Fatalf("threads: %d", len(app.Threads))
	}
}

func TestReadProfileTSVRejections(t *testing.T) {
	cases := map[string]string{
		"no header":       "0.5 0.9 0.8 1.5\n",
		"bad field count": "# profile x minthreads 1 maxthreads 2 minfreq_ghz 2\n0.5 0.9 0.8\n",
		"bad number":      "# profile x minthreads 1 maxthreads 2 minfreq_ghz 2\n0.5 0.9 zz 1.5\n",
		"dangling key":    "# profile x minthreads\n0.5 0.9 0.8 1.5\n",
		"unknown key":     "# profile x magic 3\n0.5 0.9 0.8 1.5\n",
		"bad minthreads":  "# profile x minthreads abc maxthreads 2 minfreq_ghz 2\n0.5 0.9 0.8 1.5\n",
		"no name":         "# profile\n0.5 0.9 0.8 1.5\n",
		"invalid profile": "# profile x minthreads 4 maxthreads 2 minfreq_ghz 2\n0.5 0.9 0.8 1.5\n",
		"no phases":       "# profile x minthreads 1 maxthreads 2 minfreq_ghz 2\n",
		"double header":   "# profile x minthreads 1 maxthreads 2 minfreq_ghz 2\n# profile y minthreads 1 maxthreads 2 minfreq_ghz 2\n0.5 0.9 0.8 1.5\n",
		"range violation": "# profile x minthreads 1 maxthreads 2 minfreq_ghz 2\n0.5 1.9 0.8 1.5\n",
	}
	for name, src := range cases {
		if _, err := ReadProfileTSV(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWriteProfileTSVRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProfileTSV(&buf, Profile{Name: "bad"}); err == nil {
		t.Fatal("invalid profile serialised")
	}
}
