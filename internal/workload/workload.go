// Package workload models the multi-threaded applications of Section III's
// application program model, standing in for the gem5+McPAT Parsec traces
// of the paper's setup.
//
// Each application A_j is malleable [23, 24]: its thread count K_j can be
// chosen inside [MinThreads, MaxThreads] depending on how many cores the
// run-time powers on. Each thread executes a looping sequence of phases;
// a phase carries the quantities the Hayat/VAA policies and the simulator
// actually consume — dynamic-activity factor, NBTI duty cycle, IPC and
// duration. Threads of the same application run the same phase program but
// with staggered start offsets, which is what produces the spatially and
// temporally varying thermal stress the paper's analysis relies on.
//
// Every thread requires a minimum frequency f_τ,min to meet its throughput
// or deadline constraint (threads run at exactly that frequency, never
// faster — Section VI).
package workload

import (
	"fmt"
	"math/rand"
)

// Phase is one execution phase of a thread.
type Phase struct {
	// Duration of the phase in seconds (at the fine-grained simulation
	// scale; the epoch engine up-scales).
	Duration float64
	// Activity is the dynamic-power activity factor in [0, 1].
	Activity float64
	// Duty is the NBTI stress duty cycle in [0, 1] — the fraction of time
	// PMOS devices spend under stress during the phase.
	Duty float64
	// IPC is instructions per cycle, for throughput (IPS) accounting.
	IPC float64
}

// Profile is a reusable application description.
type Profile struct {
	Name string
	// MinThreads and MaxThreads bound the malleable thread count K_j.
	MinThreads, MaxThreads int
	// MinFreq is the per-thread minimum frequency in Hz (f_τ,min).
	MinFreq float64
	// Phases is the looped phase program.
	Phases []Phase
}

// Validate reports structural problems with the profile.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile without name")
	}
	if p.MinThreads < 1 || p.MaxThreads < p.MinThreads {
		return fmt.Errorf("workload: %s has invalid thread bounds [%d, %d]", p.Name, p.MinThreads, p.MaxThreads)
	}
	if p.MinFreq <= 0 {
		return fmt.Errorf("workload: %s has non-positive MinFreq", p.Name)
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("workload: %s has no phases", p.Name)
	}
	for i, ph := range p.Phases {
		if ph.Duration <= 0 {
			return fmt.Errorf("workload: %s phase %d has non-positive duration", p.Name, i)
		}
		if ph.Activity < 0 || ph.Activity > 1 || ph.Duty < 0 || ph.Duty > 1 {
			return fmt.Errorf("workload: %s phase %d has out-of-range activity/duty", p.Name, i)
		}
		if ph.IPC <= 0 {
			return fmt.Errorf("workload: %s phase %d has non-positive IPC", p.Name, i)
		}
	}
	return nil
}

// TotalDuration returns the length of one loop of the phase program.
func (p Profile) TotalDuration() float64 {
	d := 0.0
	for _, ph := range p.Phases {
		d += ph.Duration
	}
	return d
}

// AverageDuty returns the time-weighted mean duty cycle over one loop.
func (p Profile) AverageDuty() float64 {
	total := p.TotalDuration()
	if total == 0 {
		return 0
	}
	s := 0.0
	for _, ph := range p.Phases {
		s += ph.Duty * ph.Duration
	}
	return s / total
}

// Parsec returns the Parsec-like profile set. "bodytrack-high" and "x264"
// mirror the two applications named in the paper's setup; the remaining
// profiles fill out workload mixes the way the paper's "several mixes" do.
// Durations are fine-grained-simulation seconds.
func Parsec() []Profile {
	return []Profile{
		{
			// Computer-vision pipeline: bursty, highly parallel.
			Name: "bodytrack-high", MinThreads: 4, MaxThreads: 16, MinFreq: 2.2e9,
			Phases: []Phase{
				{Duration: 0.8, Activity: 0.95, Duty: 0.85, IPC: 1.6},
				{Duration: 0.4, Activity: 0.55, Duty: 0.50, IPC: 1.1},
				{Duration: 0.6, Activity: 0.90, Duty: 0.80, IPC: 1.5},
				{Duration: 0.2, Activity: 0.35, Duty: 0.30, IPC: 0.8},
			},
		},
		{
			// Video encoder on HD sequences: sustained high intensity.
			Name: "x264", MinThreads: 4, MaxThreads: 12, MinFreq: 2.6e9,
			Phases: []Phase{
				{Duration: 1.0, Activity: 1.00, Duty: 0.95, IPC: 1.9},
				{Duration: 0.5, Activity: 0.85, Duty: 0.80, IPC: 1.6},
				{Duration: 0.7, Activity: 0.95, Duty: 0.90, IPC: 1.8},
			},
		},
		{
			// Data-mining kernel: moderate, memory-bound.
			Name: "streamcluster", MinThreads: 2, MaxThreads: 16, MinFreq: 1.6e9,
			Phases: []Phase{
				{Duration: 1.2, Activity: 0.55, Duty: 0.55, IPC: 0.9},
				{Duration: 0.8, Activity: 0.40, Duty: 0.40, IPC: 0.7},
			},
		},
		{
			// Financial Monte-Carlo: compute-bound, steady.
			Name: "swaptions", MinThreads: 2, MaxThreads: 16, MinFreq: 2.0e9,
			Phases: []Phase{
				{Duration: 1.5, Activity: 0.80, Duty: 0.75, IPC: 1.7},
				{Duration: 0.3, Activity: 0.50, Duty: 0.45, IPC: 1.0},
			},
		},
		{
			// Content-similarity search: pipeline-parallel, mixed.
			Name: "ferret", MinThreads: 4, MaxThreads: 8, MinFreq: 1.8e9,
			Phases: []Phase{
				{Duration: 0.6, Activity: 0.70, Duty: 0.65, IPC: 1.2},
				{Duration: 0.6, Activity: 0.45, Duty: 0.40, IPC: 0.9},
				{Duration: 0.4, Activity: 0.85, Duty: 0.75, IPC: 1.4},
			},
		},
		{
			// Fluid simulation: alternating compute/communicate.
			Name: "fluidanimate", MinThreads: 4, MaxThreads: 16, MinFreq: 2.1e9,
			Phases: []Phase{
				{Duration: 0.9, Activity: 0.90, Duty: 0.85, IPC: 1.5},
				{Duration: 0.5, Activity: 0.30, Duty: 0.25, IPC: 0.6},
			},
		},
		{
			// Option pricing: embarrassingly parallel, short hot loops.
			Name: "blackscholes", MinThreads: 2, MaxThreads: 16, MinFreq: 1.9e9,
			Phases: []Phase{
				{Duration: 0.4, Activity: 0.88, Duty: 0.80, IPC: 1.8},
				{Duration: 0.2, Activity: 0.40, Duty: 0.35, IPC: 0.9},
			},
		},
		{
			// Simulated annealing on a netlist: cache-hostile, low IPC.
			Name: "canneal", MinThreads: 2, MaxThreads: 12, MinFreq: 1.5e9,
			Phases: []Phase{
				{Duration: 1.4, Activity: 0.45, Duty: 0.45, IPC: 0.5},
				{Duration: 0.6, Activity: 0.60, Duty: 0.55, IPC: 0.7},
			},
		},
		{
			// Stream deduplication: pipeline with bursty hashing stages.
			Name: "dedup", MinThreads: 3, MaxThreads: 12, MinFreq: 1.8e9,
			Phases: []Phase{
				{Duration: 0.5, Activity: 0.75, Duty: 0.70, IPC: 1.3},
				{Duration: 0.3, Activity: 0.95, Duty: 0.85, IPC: 1.7},
				{Duration: 0.7, Activity: 0.50, Duty: 0.45, IPC: 0.9},
			},
		},
		{
			// Image processing pipeline: sustained medium intensity.
			Name: "vips", MinThreads: 2, MaxThreads: 16, MinFreq: 2.0e9,
			Phases: []Phase{
				{Duration: 1.0, Activity: 0.70, Duty: 0.65, IPC: 1.4},
				{Duration: 0.4, Activity: 0.55, Duty: 0.50, IPC: 1.1},
			},
		},
		{
			// Frequent-itemset mining: memory-bound with compute bursts.
			Name: "freqmine", MinThreads: 2, MaxThreads: 16, MinFreq: 1.7e9,
			Phases: []Phase{
				{Duration: 1.1, Activity: 0.50, Duty: 0.50, IPC: 0.8},
				{Duration: 0.5, Activity: 0.85, Duty: 0.75, IPC: 1.5},
			},
		},
		{
			// Real-time raytracing: deadline-driven, high frequency demand.
			Name: "raytrace", MinThreads: 2, MaxThreads: 8, MinFreq: 2.8e9,
			Phases: []Phase{
				{Duration: 0.8, Activity: 0.92, Duty: 0.85, IPC: 1.9},
				{Duration: 0.3, Activity: 0.65, Duty: 0.60, IPC: 1.3},
			},
		},
	}
}

// PaperSet returns the six profiles that drive the paper-replication
// mixes: the two applications the paper names (bodytrack-high, x264) plus
// the four fillers its "several mixes" imply. The remaining Parsec()
// profiles are available for custom mixes via MixConfig.Profiles.
func PaperSet() []Profile {
	names := map[string]bool{
		"bodytrack-high": true, "x264": true, "streamcluster": true,
		"swaptions": true, "ferret": true, "fluidanimate": true,
	}
	var out []Profile
	for _, p := range Parsec() {
		if names[p.Name] {
			out = append(out, p)
		}
	}
	return out
}

// ProfileByName looks a profile up in the Parsec set.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Parsec() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Thread is a running instance of one application thread — τ_(j,k).
type Thread struct {
	// App is the owning application.
	App *App
	// Index is k within the application.
	Index int

	phaseIdx  int
	phaseLeft float64 // seconds remaining in the current phase
}

// Phase returns the thread's current phase.
func (t *Thread) Phase() Phase { return t.App.Profile.Phases[t.phaseIdx] }

// MinFreq returns the thread's required frequency in Hz.
func (t *Thread) MinFreq() float64 { return t.App.Profile.MinFreq }

// Advance moves the thread dt seconds forward through its (looping) phase
// program.
func (t *Thread) Advance(dt float64) {
	if dt < 0 {
		panic("workload: negative time advance")
	}
	for dt > 0 {
		if dt < t.phaseLeft {
			t.phaseLeft -= dt
			return
		}
		dt -= t.phaseLeft
		t.phaseIdx = (t.phaseIdx + 1) % len(t.App.Profile.Phases)
		t.phaseLeft = t.App.Profile.Phases[t.phaseIdx].Duration
	}
}

// skipInto positions the thread at `offset` seconds into its loop.
func (t *Thread) skipInto(offset float64) {
	t.phaseIdx = 0
	t.phaseLeft = t.App.Profile.Phases[0].Duration
	loop := t.App.Profile.TotalDuration()
	if loop > 0 {
		t.Advance(offset - float64(int(offset/loop))*loop)
	}
}

// App is a running application A_j with its malleable thread set.
type App struct {
	Profile Profile
	// ID distinguishes instances of the same profile in a mix.
	ID int
	// Threads are the K_j live threads.
	Threads []*Thread
}

// NewApp instantiates an application with the requested thread count,
// clamped into the profile's malleable bounds. Thread phase programs are
// staggered deterministically from the seed.
func NewApp(p Profile, id, threads int, seed int64) (*App, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if threads < p.MinThreads {
		threads = p.MinThreads
	}
	if threads > p.MaxThreads {
		threads = p.MaxThreads
	}
	a := &App{Profile: p, ID: id, Threads: make([]*Thread, threads)}
	rng := rand.New(rand.NewSource(seed))
	loop := p.TotalDuration()
	for k := range a.Threads {
		t := &Thread{App: a, Index: k}
		t.skipInto(rng.Float64() * loop)
		a.Threads[k] = t
	}
	return a, nil
}

// Resize changes the application's thread count inside its malleable
// bounds (the varying degree of parallelism of [23, 24]), preserving the
// state of surviving threads and staggering new ones from the seed.
func (a *App) Resize(threads int, seed int64) {
	if threads < a.Profile.MinThreads {
		threads = a.Profile.MinThreads
	}
	if threads > a.Profile.MaxThreads {
		threads = a.Profile.MaxThreads
	}
	if threads <= len(a.Threads) {
		a.Threads = a.Threads[:threads]
		return
	}
	rng := rand.New(rand.NewSource(seed))
	loop := a.Profile.TotalDuration()
	for k := len(a.Threads); k < threads; k++ {
		t := &Thread{App: a, Index: k}
		t.skipInto(rng.Float64() * loop)
		a.Threads = append(a.Threads, t)
	}
}

// Retain stably reorders the application's threads so those for which
// keep returns true come first, preserving relative order inside both
// groups. Combined with Resize it implements malleable shrinking that
// drops specific threads (e.g. the ones a mapping left unplaced) rather
// than whichever happen to sit at the tail.
func (a *App) Retain(keep func(*Thread) bool) {
	kept := make([]*Thread, 0, len(a.Threads))
	var dropped []*Thread
	for _, t := range a.Threads {
		if keep(t) {
			kept = append(kept, t)
		} else {
			dropped = append(dropped, t)
		}
	}
	a.Threads = append(kept, dropped...)
}

// Mix is a concurrently executing application set (one of the paper's
// workload mixes).
type Mix struct {
	Apps []*App
}

// Threads appends every live thread across the mix to dst and returns it.
func (m *Mix) Threads(dst []*Thread) []*Thread {
	for _, a := range m.Apps {
		dst = append(dst, a.Threads...)
	}
	return dst
}

// NumThreads returns the total live thread count.
func (m *Mix) NumThreads() int {
	n := 0
	for _, a := range m.Apps {
		n += len(a.Threads)
	}
	return n
}

// Advance moves every thread in the mix forward by dt seconds.
func (m *Mix) Advance(dt float64) {
	for _, a := range m.Apps {
		for _, t := range a.Threads {
			t.Advance(dt)
		}
	}
}

// MixConfig controls deterministic mix generation.
type MixConfig struct {
	// MaxThreads caps the total thread count (typically the number of
	// powered-on cores).
	MaxThreads int
	// Apps is the number of application instances to draw.
	Apps int
	// Profiles restricts the draw to these profiles; nil uses PaperSet().
	Profiles []Profile
}

// GenerateMix draws a deterministic workload mix: `Apps` profile instances
// (round-robin over the Parsec set, shuffled by seed) with thread counts
// chosen to fill at most MaxThreads cores.
func GenerateMix(cfg MixConfig, seed int64) (*Mix, error) {
	if cfg.Apps <= 0 || cfg.MaxThreads <= 0 {
		return nil, fmt.Errorf("workload: invalid mix config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(seed))
	profiles := cfg.Profiles
	if profiles == nil {
		profiles = PaperSet()
	} else {
		profiles = append([]Profile(nil), profiles...)
	}
	if len(profiles) == 0 {
		return nil, fmt.Errorf("workload: empty profile set")
	}
	rng.Shuffle(len(profiles), func(i, j int) { profiles[i], profiles[j] = profiles[j], profiles[i] })
	mix := &Mix{}
	budget := cfg.MaxThreads
	for i := 0; i < cfg.Apps; i++ {
		p := profiles[i%len(profiles)]
		if budget < p.MinThreads {
			break
		}
		// Fair share of the remaining budget, inside malleable bounds.
		share := budget / (cfg.Apps - i)
		if share < p.MinThreads {
			share = p.MinThreads
		}
		if share > p.MaxThreads {
			share = p.MaxThreads
		}
		if share > budget {
			share = budget
		}
		a, err := NewApp(p, i, share, seed+int64(i)*7919)
		if err != nil {
			return nil, err
		}
		mix.Apps = append(mix.Apps, a)
		budget -= len(a.Threads)
	}
	if len(mix.Apps) == 0 {
		return nil, fmt.Errorf("workload: mix config %+v admits no application", cfg)
	}
	return mix, nil
}
