package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadProfileTSV: arbitrary input must be cleanly accepted or
// rejected; accepted profiles must validate and round-trip.
func FuzzReadProfileTSV(f *testing.F) {
	f.Add("# profile x minthreads 1 maxthreads 4 minfreq_ghz 2\n0.5 0.9 0.8 1.5\n")
	f.Add("garbage\n")
	f.Add("# profile y minthreads 2 maxthreads 2 minfreq_ghz 1.5\n1 1 1 1\n2 0 0 0.5\n")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ReadProfileTSV(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted profile fails Validate: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteProfileTSV(&buf, p); err != nil {
			t.Fatalf("accepted profile fails to serialise: %v", err)
		}
		p2, err := ReadProfileTSV(&buf)
		if err != nil {
			t.Fatalf("round-trip failed: %v", err)
		}
		if p2.Name != p.Name || len(p2.Phases) != len(p.Phases) {
			t.Fatal("round-trip changed the profile")
		}
	})
}
