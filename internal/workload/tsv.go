package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file imports and exports application profiles as TSV so users can
// plug externally derived phase traces (e.g. reduced from real gem5 or
// perf-counter runs) into the simulator instead of the built-in synthetic
// Parsec set.
//
// Format (tab- or space-separated):
//
//	# profile <name> minthreads <k> maxthreads <k> minfreq_ghz <f>
//	# duration_s activity duty ipc
//	0.8  0.95  0.85  1.6
//	0.4  0.55  0.50  1.1
//
// The first directive line carries the metadata; subsequent non-comment
// lines are phases in order.

// WriteProfileTSV serialises a profile in the format ReadProfileTSV
// accepts.
func WriteProfileTSV(w io.Writer, p Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# profile %s minthreads %d maxthreads %d minfreq_ghz %g\n",
		p.Name, p.MinThreads, p.MaxThreads, p.MinFreq/1e9)
	fmt.Fprintf(bw, "# duration_s activity duty ipc\n")
	for _, ph := range p.Phases {
		fmt.Fprintf(bw, "%g\t%g\t%g\t%g\n", ph.Duration, ph.Activity, ph.Duty, ph.IPC)
	}
	return bw.Flush()
}

// ReadProfileTSV parses one profile document.
func ReadProfileTSV(r io.Reader) (Profile, error) {
	var p Profile
	sc := bufio.NewScanner(r)
	lineNo := 0
	sawHeader := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(strings.TrimPrefix(line, "#"))
			if len(fields) > 0 && fields[0] == "profile" {
				if sawHeader {
					return Profile{}, fmt.Errorf("workload: line %d: duplicate profile directive", lineNo)
				}
				if err := parseProfileDirective(fields, &p); err != nil {
					return Profile{}, fmt.Errorf("workload: line %d: %w", lineNo, err)
				}
				sawHeader = true
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return Profile{}, fmt.Errorf("workload: line %d: phase needs 4 fields, got %d", lineNo, len(fields))
		}
		vals := make([]float64, 4)
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return Profile{}, fmt.Errorf("workload: line %d field %d: %w", lineNo, i+1, err)
			}
			vals[i] = v
		}
		p.Phases = append(p.Phases, Phase{Duration: vals[0], Activity: vals[1], Duty: vals[2], IPC: vals[3]})
	}
	if err := sc.Err(); err != nil {
		return Profile{}, err
	}
	if !sawHeader {
		return Profile{}, fmt.Errorf("workload: missing '# profile …' directive")
	}
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// parseProfileDirective parses "profile <name> key value …".
func parseProfileDirective(fields []string, p *Profile) error {
	if len(fields) < 2 {
		return fmt.Errorf("profile directive needs a name")
	}
	p.Name = fields[1]
	kv := fields[2:]
	if len(kv)%2 != 0 {
		return fmt.Errorf("profile directive has a dangling key")
	}
	for i := 0; i < len(kv); i += 2 {
		key, val := kv[i], kv[i+1]
		switch key {
		case "minthreads":
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("minthreads: %w", err)
			}
			p.MinThreads = n
		case "maxthreads":
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("maxthreads: %w", err)
			}
			p.MaxThreads = n
		case "minfreq_ghz":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return fmt.Errorf("minfreq_ghz: %w", err)
			}
			p.MinFreq = f * 1e9
		default:
			return fmt.Errorf("unknown profile key %q", key)
		}
	}
	return nil
}
