package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParsecProfilesValid(t *testing.T) {
	ps := Parsec()
	if len(ps) < 5 {
		t.Fatalf("only %d profiles", len(ps))
	}
	names := make(map[string]bool)
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if names[p.Name] {
			t.Errorf("duplicate profile name %s", p.Name)
		}
		names[p.Name] = true
	}
	// The two applications the paper names must exist.
	for _, want := range []string{"bodytrack-high", "x264"} {
		if _, ok := ProfileByName(want); !ok {
			t.Errorf("missing paper profile %s", want)
		}
	}
	if _, ok := ProfileByName("no-such-app"); ok {
		t.Error("lookup of unknown profile succeeded")
	}
}

func TestProfileValidateRejectsBadShapes(t *testing.T) {
	good, _ := ProfileByName("x264")
	cases := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.MinThreads = 0 },
		func(p *Profile) { p.MaxThreads = p.MinThreads - 1 },
		func(p *Profile) { p.MinFreq = 0 },
		func(p *Profile) { p.Phases = nil },
		func(p *Profile) { p.Phases = []Phase{{Duration: 0, Activity: 0.5, Duty: 0.5, IPC: 1}} },
		func(p *Profile) { p.Phases = []Phase{{Duration: 1, Activity: 1.5, Duty: 0.5, IPC: 1}} },
		func(p *Profile) { p.Phases = []Phase{{Duration: 1, Activity: 0.5, Duty: -0.1, IPC: 1}} },
		func(p *Profile) { p.Phases = []Phase{{Duration: 1, Activity: 0.5, Duty: 0.5, IPC: 0}} },
	}
	for i, mut := range cases {
		p := good
		p.Phases = append([]Phase(nil), good.Phases...)
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestTotalDurationAndAverageDuty(t *testing.T) {
	p := Profile{
		Name: "t", MinThreads: 1, MaxThreads: 1, MinFreq: 1e9,
		Phases: []Phase{
			{Duration: 1, Activity: 1, Duty: 1.0, IPC: 1},
			{Duration: 3, Activity: 1, Duty: 0.2, IPC: 1},
		},
	}
	if d := p.TotalDuration(); d != 4 {
		t.Fatalf("TotalDuration = %v", d)
	}
	want := (1*1.0 + 3*0.2) / 4
	if d := p.AverageDuty(); math.Abs(d-want) > 1e-12 {
		t.Fatalf("AverageDuty = %v, want %v", d, want)
	}
}

func TestNewAppClampsThreadCount(t *testing.T) {
	p, _ := ProfileByName("x264") // bounds [4, 12]
	a, err := NewApp(p, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Threads) != p.MinThreads {
		t.Fatalf("threads = %d, want clamp to %d", len(a.Threads), p.MinThreads)
	}
	a, _ = NewApp(p, 0, 100, 1)
	if len(a.Threads) != p.MaxThreads {
		t.Fatalf("threads = %d, want clamp to %d", len(a.Threads), p.MaxThreads)
	}
}

func TestThreadsStaggered(t *testing.T) {
	p, _ := ProfileByName("bodytrack-high")
	a, err := NewApp(p, 0, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Not all threads should sit in the same phase with identical
	// remaining time.
	first := a.Threads[0]
	allSame := true
	for _, th := range a.Threads[1:] {
		if th.phaseIdx != first.phaseIdx || th.phaseLeft != first.phaseLeft {
			allSame = false
			break
		}
	}
	if allSame {
		t.Fatal("threads not staggered")
	}
}

func TestAdvanceWrapsPhases(t *testing.T) {
	p := Profile{
		Name: "t", MinThreads: 1, MaxThreads: 1, MinFreq: 1e9,
		Phases: []Phase{
			{Duration: 1, Activity: 0.1, Duty: 0.1, IPC: 1},
			{Duration: 2, Activity: 0.9, Duty: 0.9, IPC: 1},
		},
	}
	a, err := NewApp(p, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	th := a.Threads[0]
	th.phaseIdx, th.phaseLeft = 0, 1 // reset stagger for determinism
	th.Advance(0.5)
	if th.Phase().Activity != 0.1 {
		t.Fatalf("still phase 0 expected")
	}
	th.Advance(0.5) // exactly at boundary → next phase
	if th.Phase().Activity != 0.9 {
		t.Fatalf("phase 1 expected at boundary")
	}
	th.Advance(2.0) // wraps to phase 0
	if th.Phase().Activity != 0.1 {
		t.Fatalf("wrap to phase 0 expected, at phase %d", th.phaseIdx)
	}
	// A full loop returns to the same point.
	idx, left := th.phaseIdx, th.phaseLeft
	th.Advance(3.0)
	if th.phaseIdx != idx || math.Abs(th.phaseLeft-left) > 1e-12 {
		t.Fatalf("full-loop advance not periodic: (%d,%v) vs (%d,%v)", th.phaseIdx, th.phaseLeft, idx, left)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	p, _ := ProfileByName("x264")
	a, _ := NewApp(p, 0, 4, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Threads[0].Advance(-1)
}

func TestResize(t *testing.T) {
	p, _ := ProfileByName("streamcluster") // [2, 16]
	a, err := NewApp(p, 0, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Shrink: keeps the first threads.
	survivor := a.Threads[1]
	a.Resize(4, 3)
	if len(a.Threads) != 4 || a.Threads[1] != survivor {
		t.Fatal("shrink did not preserve surviving threads")
	}
	// Grow: new threads appended with correct indices.
	a.Resize(10, 4)
	if len(a.Threads) != 10 {
		t.Fatalf("grow to %d", len(a.Threads))
	}
	for k, th := range a.Threads {
		if th.Index > 10 {
			t.Fatalf("thread %d has index %d", k, th.Index)
		}
	}
	// Clamp below MinThreads.
	a.Resize(0, 5)
	if len(a.Threads) != p.MinThreads {
		t.Fatalf("resize(0) = %d threads, want %d", len(a.Threads), p.MinThreads)
	}
}

func TestGenerateMixDeterministic(t *testing.T) {
	cfg := MixConfig{MaxThreads: 32, Apps: 4}
	a, err := GenerateMix(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateMix(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumThreads() != b.NumThreads() || len(a.Apps) != len(b.Apps) {
		t.Fatal("same seed gave different mixes")
	}
	for i := range a.Apps {
		if a.Apps[i].Profile.Name != b.Apps[i].Profile.Name {
			t.Fatal("same seed gave different app order")
		}
	}
}

func TestGenerateMixRespectsBudget(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		mix, err := GenerateMix(MixConfig{MaxThreads: 32, Apps: 4}, seed)
		if err != nil {
			t.Fatal(err)
		}
		if n := mix.NumThreads(); n > 32 {
			t.Fatalf("seed %d: %d threads exceed budget 32", seed, n)
		}
		if n := mix.NumThreads(); n < 8 {
			t.Fatalf("seed %d: mix suspiciously small (%d threads)", seed, n)
		}
	}
}

func TestGenerateMixErrors(t *testing.T) {
	if _, err := GenerateMix(MixConfig{MaxThreads: 0, Apps: 3}, 1); err == nil {
		t.Error("expected error for zero budget")
	}
	if _, err := GenerateMix(MixConfig{MaxThreads: 16, Apps: 0}, 1); err == nil {
		t.Error("expected error for zero apps")
	}
	if _, err := GenerateMix(MixConfig{MaxThreads: 1, Apps: 1}, 1); err == nil {
		t.Error("expected error when no profile fits a 1-thread budget")
	}
}

func TestMixAdvanceAndThreads(t *testing.T) {
	mix, err := GenerateMix(MixConfig{MaxThreads: 24, Apps: 3}, 9)
	if err != nil {
		t.Fatal(err)
	}
	all := mix.Threads(nil)
	if len(all) != mix.NumThreads() {
		t.Fatalf("Threads() returned %d, NumThreads %d", len(all), mix.NumThreads())
	}
	// Advancing keeps phases valid.
	for i := 0; i < 100; i++ {
		mix.Advance(0.13)
		for _, th := range all {
			ph := th.Phase()
			if ph.Duration <= 0 || ph.IPC <= 0 {
				t.Fatal("thread landed in invalid phase")
			}
		}
	}
}

// Property: Advance is additive — advancing by a+b equals advancing by a
// then b.
func TestAdvanceAdditiveProperty(t *testing.T) {
	p, _ := ProfileByName("ferret")
	f := func(rawA, rawB uint16, seed int64) bool {
		a := float64(rawA%1000) / 250
		b := float64(rawB%1000) / 250
		app1, err := NewApp(p, 0, 4, seed)
		if err != nil {
			return false
		}
		app2, err := NewApp(p, 0, 4, seed)
		if err != nil {
			return false
		}
		t1, t2 := app1.Threads[0], app2.Threads[0]
		t1.Advance(a + b)
		t2.Advance(a)
		t2.Advance(b)
		return t1.phaseIdx == t2.phaseIdx && math.Abs(t1.phaseLeft-t2.phaseLeft) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRetainReorders(t *testing.T) {
	p, _ := ProfileByName("streamcluster")
	a, err := NewApp(p, 0, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Keep even-indexed threads: they must move to the front, stably.
	evens := map[*Thread]bool{}
	for i, th := range a.Threads {
		if i%2 == 0 {
			evens[th] = true
		}
	}
	a.Retain(func(th *Thread) bool { return evens[th] })
	for i := 0; i < 3; i++ {
		if !evens[a.Threads[i]] {
			t.Fatalf("position %d holds a dropped thread", i)
		}
	}
	for i := 3; i < 6; i++ {
		if evens[a.Threads[i]] {
			t.Fatalf("position %d holds a kept thread", i)
		}
	}
	// Stability inside the kept group.
	if a.Threads[0].Index > a.Threads[1].Index || a.Threads[1].Index > a.Threads[2].Index {
		t.Fatal("Retain not stable")
	}
	// Shrink drops exactly the non-kept tail.
	a.Resize(3, 2)
	for _, th := range a.Threads {
		if !evens[th] {
			t.Fatal("Resize after Retain dropped a kept thread")
		}
	}
}

func TestPaperSetContents(t *testing.T) {
	ps := PaperSet()
	if len(ps) != 6 {
		t.Fatalf("paper set has %d profiles", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name] = true
	}
	for _, want := range []string{"bodytrack-high", "x264"} {
		if !names[want] {
			t.Fatalf("paper set missing %s", want)
		}
	}
	if names["raytrace"] {
		t.Fatal("extension profile leaked into the paper set")
	}
}

func TestGenerateMixCustomProfiles(t *testing.T) {
	only, _ := ProfileByName("raytrace")
	mix, err := GenerateMix(MixConfig{MaxThreads: 16, Apps: 2, Profiles: []Profile{only}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range mix.Apps {
		if a.Profile.Name != "raytrace" {
			t.Fatalf("unexpected profile %s", a.Profile.Name)
		}
	}
	if _, err := GenerateMix(MixConfig{MaxThreads: 16, Apps: 2, Profiles: []Profile{}}, 1); err == nil {
		t.Fatal("empty profile set accepted")
	}
}
