// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index) plus ablations of
// the design choices DESIGN.md §5 calls out.
//
// Population benchmarks run reduced campaigns (2 chips, 2–3 years) so the
// whole suite stays tractable; cmd/experiments runs the full 25-chip,
// 10-year campaign. Shape metrics (Hayat/VAA ratios) are attached to the
// benchmark output via ReportMetric.
package hayat_test

import (
	"sync"
	"testing"

	"github.com/kit-ces/hayat/internal/aging"
	"github.com/kit-ces/hayat/internal/baseline"
	"github.com/kit-ces/hayat/internal/core"
	"github.com/kit-ces/hayat/internal/experiments"
	"github.com/kit-ces/hayat/internal/floorplan"
	"github.com/kit-ces/hayat/internal/gates"
	"github.com/kit-ces/hayat/internal/policy"
	"github.com/kit-ces/hayat/internal/sim"
	"github.com/kit-ces/hayat/internal/thermal"
	"github.com/kit-ces/hayat/internal/thermpredict"
	"github.com/kit-ces/hayat/internal/workload"
)

var (
	platformOnce sync.Once
	platform     *experiments.Platform
	benchKits    []*experiments.ChipKit
)

func benchPlatform(b *testing.B) (*experiments.Platform, []*experiments.ChipKit) {
	b.Helper()
	platformOnce.Do(func() {
		p, err := experiments.NewPlatform()
		if err != nil {
			panic(err)
		}
		kits, err := p.Kits(1, 2)
		if err != nil {
			panic(err)
		}
		platform, benchKits = p, kits
	})
	return platform, benchKits
}

// E1 — Fig. 1(b): delay increase vs years for the temperature family.
func BenchmarkFig1b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, _ := experiments.Fig1b(1, 10)
		if len(series) != 4 {
			b.Fatal("unexpected family size")
		}
	}
}

// E2/E3 — Fig. 2: DCM analysis maps and the Fig. 2(o) table.
func BenchmarkFig2Maps(b *testing.B) {
	p, _ := benchPlatform(b)
	for i := 0; i < b.N; i++ {
		chips, err := p.Fig2([]int64{1, 2}, 2)
		if err != nil {
			b.Fatal(err)
		}
		_ = experiments.Fig2oTable(chips)
	}
}

// runPair executes a reduced Hayat/VAA pair and reports the ratio metrics
// of Figs. 7–10.
func runPair(b *testing.B, dark float64) {
	p, kits := benchPlatform(b)
	var last experiments.PairSummary
	for i := 0; i < b.N; i++ {
		ps, err := p.RunPair(kits, dark, 2)
		if err != nil {
			b.Fatal(err)
		}
		last = ps
	}
	b.ReportMetric(last.Comparison.DTMEventsRatio, "dtm-ratio")
	b.ReportMetric(last.Comparison.TempOverAmbientRatio, "temp-ratio")
	b.ReportMetric(last.Comparison.ChipFMaxAgingRatio, "chipfmax-ratio")
	b.ReportMetric(last.Comparison.AvgFMaxAgingRatio, "avgfmax-ratio")
}

// E4 — Fig. 7: normalised DTM events (25 % and 50 % dark).
func BenchmarkFig7DTMEvents25(b *testing.B) { runPair(b, 0.25) }
func BenchmarkFig7DTMEvents50(b *testing.B) { runPair(b, 0.50) }

// E5 — Fig. 8: temperature over ambient (shares the pair run; reported as
// temp-ratio above and measured standalone here at 50 % dark).
func BenchmarkFig8AvgTemp(b *testing.B) { runPair(b, 0.50) }

// E6 — Fig. 9: chip-fmax aging rate.
func BenchmarkFig9ChipFmax(b *testing.B) { runPair(b, 0.50) }

// E7 — Fig. 10: per-core average fmax aging rate.
func BenchmarkFig10AvgFmax(b *testing.B) { runPair(b, 0.25) }

// E9 — Fig. 11: average frequency over the lifetime + lifetime extension.
func BenchmarkFig11Lifetime(b *testing.B) {
	p, kits := benchPlatform(b)
	for i := 0; i < b.N; i++ {
		ps, err := p.RunPair(kits, 0.50, 3)
		if err != nil {
			b.Fatal(err)
		}
		_ = experiments.Fig11Series([]experiments.PairSummary{ps})
		_ = experiments.Fig11Lifetimes([]experiments.PairSummary{ps}, []float64{3})
	}
}

// ---------------------------------------------------------------------------
// E10 — Section VI overhead: the run-time primitives.

func overheadContext(b *testing.B) (*policy.Context, *experiments.ChipKit) {
	b.Helper()
	p, kits := benchPlatform(b)
	kit := kits[0]
	n := p.FP.N()
	ctx := &policy.Context{
		Chip: kit.Chip, Predictor: kit.Pred, AgingTable: kit.Table, PowerModel: p.PM,
		TSafe: 368.15, MaxOnCores: n / 2, HorizonYears: 0.25,
		Health: make([]aging.State, n),
		FMax:   append([]float64(nil), kit.Chip.FMax0...),
		Temps:  make([]float64, n),
	}
	for i := 0; i < n; i++ {
		ctx.Health[i] = aging.NewState()
		ctx.Temps[i] = 330
	}
	return ctx, kit
}

// BenchmarkEstimateNextHealth measures one health-table estimate (paper:
// ≈10 µs).
func BenchmarkEstimateNextHealth(b *testing.B) {
	ctx, _ := overheadContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.EstimateNextHealth(ctx, i%64, 335, 0.6)
	}
}

// BenchmarkPredictTemperature measures one full chip thermal prediction
// (paper: ≈25 µs).
func BenchmarkPredictTemperature(b *testing.B) {
	_, kit := overheadContext(b)
	n := 64
	pdyn := make([]float64, n)
	on := make([]bool, n)
	for i := 0; i < n; i += 2 {
		pdyn[i], on[i] = 4, true
	}
	dst := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kit.Pred.Predict(dst, pdyn, on)
	}
}

// BenchmarkWorstCaseDecision measures one full Algorithm 1 mapping
// decision for a whole mix (paper worst case: ≈1.6 ms).
func BenchmarkWorstCaseDecision(b *testing.B) {
	ctx, _ := overheadContext(b)
	mix, err := workload.GenerateMix(workload.MixConfig{MaxThreads: 32, Apps: 4}, 1)
	if err != nil {
		b.Fatal(err)
	}
	threads := mix.Threads(nil)
	pol, err := core.New(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pol.Map(ctx, threads); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5).

// BenchmarkAblationNaiveAging quantifies the error of naive aging
// accumulation versus effective-age re-anchoring on a cool→hot history.
func BenchmarkAblationNaiveAging(b *testing.B) {
	ca := aging.NewCoreAging(aging.DefaultParams(), gates.Generate(gates.DefaultGenerateConfig(), 1))
	tab := aging.DefaultTable(ca)
	var gap float64
	for i := 0; i < b.N; i++ {
		correct, naive := aging.NewState(), aging.NewState()
		correct.Advance(tab, 320, 0.4, 5)
		naive.NaiveAdvance(tab, 320, 0.4, 0, 5)
		correct.Advance(tab, 400, 0.9, 5)
		naive.NaiveAdvance(tab, 400, 0.9, 5, 5)
		gap = naive.Factor - correct.Factor
	}
	b.ReportMetric(gap, "health-overestimate")
}

// ablationRun runs a reduced Hayat lifetime with a modified config and
// reports the end-of-life average frequency.
func ablationRun(b *testing.B, mutate func(*core.Config)) {
	p, kits := benchPlatform(b)
	cfg := sim.DefaultConfig()
	cfg.Years = 2
	cfg.WindowSeconds = 2.0
	hcfg := core.DefaultConfig()
	mutate(&hcfg)
	pol, err := core.New(hcfg)
	if err != nil {
		b.Fatal(err)
	}
	var avgF float64
	for i := 0; i < b.N; i++ {
		eng, err := sim.New(cfg, pol, kits[0].Chip, p.TM, p.PM, kits[0].Pred, kits[0].Table)
		if err != nil {
			b.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			b.Fatal(err)
		}
		avgF = res.Records[len(res.Records)-1].AvgFMax
	}
	b.ReportMetric(avgF/1e9, "avgf-ghz")
}

// BenchmarkAblationWeightsDefault is the reference point for the weight
// ablations below.
func BenchmarkAblationWeightsDefault(b *testing.B) {
	ablationRun(b, func(*core.Config) {})
}

// BenchmarkAblationNoSpread disables the DCM-optimisation spread term —
// the mapping degenerates toward VAA-like clustering.
func BenchmarkAblationNoSpread(b *testing.B) {
	ablationRun(b, func(c *core.Config) { c.SpreadWeight = 0 })
}

// BenchmarkAblationNoIncumbency disables DCM stability across epochs —
// stress rotates onto fresh cores whose y^(1/6) aging is steepest.
func BenchmarkAblationNoIncumbency(b *testing.B) {
	ablationRun(b, func(c *core.Config) { c.IncumbentWeight = 0 })
}

// BenchmarkAblationNoHealthTerm removes Eq. 9's health ratio (β = 0).
func BenchmarkAblationNoHealthTerm(b *testing.B) {
	ablationRun(b, func(c *core.Config) { c.BetaEarly, c.BetaLate = 0, 0 })
}

// BenchmarkAblationFullPredict disables the affected-core pruning of
// Algorithm 1 line 8 (every candidate re-evaluates every core's health).
func BenchmarkAblationFullPredict(b *testing.B) {
	ctx, _ := overheadContext(b)
	mix, err := workload.GenerateMix(workload.MixConfig{MaxThreads: 32, Apps: 4}, 1)
	if err != nil {
		b.Fatal(err)
	}
	threads := mix.Threads(nil)
	cfg := core.DefaultConfig()
	cfg.AffectedDeltaK = 0 // no pruning
	pol, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pol.Map(ctx, threads); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDCMPolicies compares steady-state peak temperatures of
// contiguous, checkerboard and Hayat-spread DCM shapes at equal power —
// the physical basis of Fig. 2.
func BenchmarkAblationDCMPolicies(b *testing.B) {
	p, _ := benchPlatform(b)
	n := p.FP.N()
	var contiguous, checker float64
	for i := 0; i < b.N; i++ {
		power := make([]float64, n)
		for c := 0; c < 32; c++ {
			power[c] = 6
		}
		temps := p.TM.SteadyState(power, nil)
		contiguous = maxOf(temps)

		power = make([]float64, n)
		for c := 0; c < n; c++ {
			if (c/8+c%8)%2 == 0 {
				power[c] = 6
			}
		}
		temps = p.TM.SteadyState(power, nil)
		checker = maxOf(temps)
	}
	b.ReportMetric(contiguous, "contiguous-peakK")
	b.ReportMetric(checker, "checker-peakK")
}

func maxOf(v []float64) float64 {
	m := v[0]
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// BenchmarkAblationHCI compares end-of-run average frequency of the
// NBTI-only model against the NBTI+HCI composite (the aging-physics
// extension), holding everything else fixed.
func BenchmarkAblationHCI(b *testing.B) {
	p, kits := benchPlatform(b)
	kit := kits[0]
	composite, err := aging.NewCompositeCoreAging(aging.DefaultParams(), aging.DefaultHCIParams(),
		gates.Generate(gates.DefaultGenerateConfig(), 1))
	if err != nil {
		b.Fatal(err)
	}
	compositeTable := aging.DefaultTable(composite)
	cfg := sim.DefaultConfig()
	cfg.Years = 2
	cfg.WindowSeconds = 2.0
	pol, err := core.New(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	var nbtiF, hciF float64
	for i := 0; i < b.N; i++ {
		engN, err := sim.New(cfg, pol, kit.Chip, p.TM, p.PM, kit.Pred, kit.Table)
		if err != nil {
			b.Fatal(err)
		}
		resN, err := engN.Run()
		if err != nil {
			b.Fatal(err)
		}
		engH, err := sim.New(cfg, pol, kit.Chip, p.TM, p.PM, kit.Pred, compositeTable)
		if err != nil {
			b.Fatal(err)
		}
		resH, err := engH.Run()
		if err != nil {
			b.Fatal(err)
		}
		nbtiF = resN.Records[len(resN.Records)-1].AvgFMax
		hciF = resH.Records[len(resH.Records)-1].AvgFMax
	}
	b.ReportMetric(nbtiF/1e9, "nbti-avgf-ghz")
	b.ReportMetric(hciF/1e9, "hci-avgf-ghz")
}

// ---------------------------------------------------------------------------
// Substrate benchmarks: the cost of the building blocks.

// BenchmarkThermalSteadyState measures one steady-state solve on the
// paper's 8×8 network (dense LU backend).
func BenchmarkThermalSteadyState(b *testing.B) {
	p, _ := benchPlatform(b)
	power := make([]float64, 64)
	for i := range power {
		power[i] = 5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.TM.SteadyState(power, nil)
	}
}

// BenchmarkThermalSteadyStateSparse measures the CG backend on a
// 20×20-core network (1200 nodes).
func BenchmarkThermalSteadyStateSparse(b *testing.B) {
	fp := floorplan.New(20, 20)
	tm, err := thermal.New(fp, thermal.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	power := make([]float64, fp.N())
	for i := range power {
		power[i] = 5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.SteadyState(power, nil)
	}
}

// BenchmarkThermalTransientStep measures one implicit-Euler step (the
// inner loop of every epoch window).
func BenchmarkThermalTransientStep(b *testing.B) {
	p, _ := benchPlatform(b)
	tr, err := p.TM.NewTransient(0.02)
	if err != nil {
		b.Fatal(err)
	}
	power := make([]float64, 64)
	for i := range power {
		power[i] = 5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Step(power)
	}
}

// BenchmarkGridModelSteadyState measures the sub-core grid model at
// SubDiv = 2 (384 nodes).
func BenchmarkGridModelSteadyState(b *testing.B) {
	p, _ := benchPlatform(b)
	grid, err := thermal.NewGrid(p.FP, thermal.DefaultConfig(), 2, nil)
	if err != nil {
		b.Fatal(err)
	}
	power := make([]float64, 64)
	for i := range power {
		power[i] = 5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grid.SteadyState(power, nil)
	}
}

// BenchmarkVariationChip measures drawing one die from the correlated
// process-variation model (Cholesky colouring + per-core derivation).
func BenchmarkVariationChip(b *testing.B) {
	p, _ := benchPlatform(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Gen.Chip(int64(i + 1))
	}
}

// BenchmarkAgingTableBuild measures the offline 3D-table generation (the
// "start-up time effort for a given chip").
func BenchmarkAgingTableBuild(b *testing.B) {
	ca := aging.NewCoreAging(aging.DefaultParams(), gates.Generate(gates.DefaultGenerateConfig(), 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aging.DefaultTable(ca)
	}
}

// BenchmarkPredictorLearn measures the offline thermal-profile learning
// (64 steady-state probes).
func BenchmarkPredictorLearn(b *testing.B) {
	p, kits := benchPlatform(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := thermpredict.Learn(p.TM, p.PM, kits[0].Chip); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCompactPredictor compares the exact response-matrix
// predictor against the radial-kernel variant: per-call time plus the
// worst-case temperature error of the approximation.
func BenchmarkAblationCompactPredictor(b *testing.B) {
	p, kits := benchPlatform(b)
	kit := kits[0]
	cp, err := thermpredict.LearnCompact(p.TM, p.PM, kit.Chip)
	if err != nil {
		b.Fatal(err)
	}
	n := 64
	pdyn := make([]float64, n)
	on := make([]bool, n)
	for i := 0; i < n; i += 2 {
		pdyn[i], on[i] = 4, true
	}
	dst := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp.Predict(dst, pdyn, on)
	}
	b.StopTimer()
	b.ReportMetric(cp.AccuracyVs(kit.Pred, pdyn, on), "worst-err-K")
	b.ReportMetric(float64(cp.KernelSize()), "kernel-floats")
}

// BenchmarkArrivalDecision measures the paper's actual overhead scenario:
// incremental placement of a newly arrived application into a running
// mapping (Section VI quotes ≈1.6 ms worst case).
func BenchmarkArrivalDecision(b *testing.B) {
	ctx, _ := overheadContext(b)
	mix, err := workload.GenerateMix(workload.MixConfig{MaxThreads: 32, Apps: 4}, 1)
	if err != nil {
		b.Fatal(err)
	}
	threads := mix.Threads(nil)
	pol, err := core.New(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	baseRes, err := pol.Map(ctx, threads[:len(threads)-4])
	if err != nil {
		b.Fatal(err)
	}
	arrivals := threads[len(threads)-4:]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pol.MapIncremental(ctx, baseRes.Assignment, arrivals); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPolicyLadder brackets the policy space: Random
// (feasibility only) → CoolestFirst (temperature only) → VAA (locality,
// max-throughput) → Hayat (aging + variation + DCM), reporting the
// end-of-run average frequency of each on the same chip.
func BenchmarkAblationPolicyLadder(b *testing.B) {
	p, kits := benchPlatform(b)
	cfg := sim.DefaultConfig()
	cfg.Years = 2
	cfg.WindowSeconds = 2.0
	pols := []policy.Policy{
		baseline.NewRandom(1),
		baseline.NewCoolestFirst(),
	}
	if v, err := baseline.New(baseline.DefaultConfig()); err == nil {
		pols = append(pols, v)
	}
	if h, err := core.New(core.DefaultConfig()); err == nil {
		pols = append(pols, h)
	}
	finals := make(map[string]float64)
	for i := 0; i < b.N; i++ {
		for _, pol := range pols {
			eng, err := sim.New(cfg, pol, kits[0].Chip, p.TM, p.PM, kits[0].Pred, kits[0].Table)
			if err != nil {
				b.Fatal(err)
			}
			res, err := eng.Run()
			if err != nil {
				b.Fatal(err)
			}
			finals[pol.Name()] = res.Records[len(res.Records)-1].AvgFMax / 1e9
		}
	}
	b.ReportMetric(finals["Random"], "random-ghz")
	b.ReportMetric(finals["CoolestFirst"], "coolest-ghz")
	b.ReportMetric(finals["VAA"], "vaa-ghz")
	b.ReportMetric(finals["Hayat"], "hayat-ghz")
}
