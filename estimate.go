package hayat

import (
	"fmt"
	"math"
	"sort"
)

// LifetimeEstimate is the fast analytic stand-in for a full lifetime
// simulation: a single thermpredict steady-state profile for a static
// mapping, pushed through the chip's offline 3D aging table at the target
// age. It captures the dominant effects (variation map, dark-silicon
// budget, leakage–temperature feedback, NBTI duty dependence) but none of
// the epoch dynamics — no DTM, no remapping, no workload phases — which
// is why services serving it label the answer degraded.
type LifetimeEstimate struct {
	Policy       string  `json:"policy"`
	ChipSeed     int64   `json:"chip_seed"`
	DarkFraction float64 `json:"dark_fraction"`
	Years        float64 `json:"years"`
	Duty         float64 `json:"duty"`
	ActiveCores  int     `json:"active_cores"`
	AvgTempK     float64 `json:"avg_temp_k"`
	PeakTempK    float64 `json:"peak_temp_k"`
	AvgFinalFMax float64 `json:"avg_final_fmax_hz"`
	MinFinalFMax float64 `json:"min_final_fmax_hz"`
	AvgHealth    float64 `json:"avg_health"`
	Method       string  `json:"method"`
}

// EstimateLifetime computes the analytic lifetime estimate for this chip
// under a static mapping: the dark-silicon budget's worth of cores is
// filled preferring the fastest cores (both policies map the full thread
// count; the ranking stands in for their placement logic), the resulting
// steady-state thermal profile is predicted once, and each core's aged
// frequency at Config.Years comes from one aging-table lookup. Runs in
// microseconds against the minutes of a full simulation.
func (c *Chip) EstimateLifetime(p Policy) (*LifetimeEstimate, error) {
	cfg := c.sys.cfg
	n := c.sys.fp.N()
	maxOn := int(float64(n) * (1 - cfg.DarkFraction))
	if maxOn < 1 {
		maxOn = 1
	}
	if maxOn > n {
		maxOn = n
	}

	// Duty follows the config's duty mode; without per-app knowledge the
	// "known" mode degrades to the generic 50 % assumption.
	duty := 0.5
	if cfg.DutyMode == "worst" {
		duty = 1.0
	}

	// Activate the fastest cores up to the dark-silicon budget.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return c.chip.FMax0[idx[a]] > c.chip.FMax0[idx[b]] })
	on := make([]bool, n)
	pdyn := make([]float64, n)
	for _, i := range idx[:maxOn] {
		on[i] = true
		pdyn[i] = c.sys.pm.DynamicPower(c.chip.FMax0[i], duty)
	}

	temps := c.pred.Predict(nil, pdyn, on)

	years := cfg.Years
	if max := c.tab.MaxYears(); years > max {
		years = max
	}
	est := &LifetimeEstimate{
		Policy:       p.String(),
		ChipSeed:     c.chip.Seed,
		DarkFraction: cfg.DarkFraction,
		Years:        years,
		Duty:         duty,
		ActiveCores:  maxOn,
		MinFinalFMax: math.Inf(1),
		Method:       "thermpredict-steady-state+aging-table",
	}
	for i := 0; i < n; i++ {
		T := temps[i]
		if math.IsNaN(T) || math.IsInf(T, 0) {
			return nil, fmt.Errorf("hayat: estimate produced non-finite temperature at core %d", i)
		}
		d := 0.0
		if on[i] {
			d = duty
		}
		factor := c.tab.Lookup(T, d, years)
		aged := c.chip.FMax0[i] * factor
		est.AvgHealth += factor
		est.AvgFinalFMax += aged
		if aged < est.MinFinalFMax {
			est.MinFinalFMax = aged
		}
		est.AvgTempK += T
		if T > est.PeakTempK {
			est.PeakTempK = T
		}
	}
	est.AvgHealth /= float64(n)
	est.AvgFinalFMax /= float64(n)
	est.AvgTempK /= float64(n)
	return est, nil
}
