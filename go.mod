module github.com/kit-ces/hayat

go 1.22
