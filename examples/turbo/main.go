// Turbo boost: the paper names Intel Turbo Boost [21] as an example of a
// performance-boosting technique that elevates temperatures and
// aggravates NBTI aging. This example quantifies the trade: throughput
// gained vs. health and lifetime lost, under the Hayat policy.
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/kit-ces/hayat"
)

func main() {
	seed := flag.Int64("seed", 1, "chip seed")
	years := flag.Float64("years", 5, "simulated lifetime")
	flag.Parse()

	run := func(turbo bool) *hayat.LifetimeResult {
		cfg := hayat.DefaultConfig()
		cfg.Years = *years
		cfg.TurboBoost = turbo
		cfg.TurboMarginK = 15
		sys, err := hayat.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		chip, err := sys.NewChip(*seed)
		if err != nil {
			log.Fatal(err)
		}
		res, err := chip.RunLifetime(hayat.PolicyHayat)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := run(false)
	turbo := run(true)

	sumIPS := func(r *hayat.LifetimeResult) float64 {
		s := 0.0
		for _, e := range r.Epochs {
			s += e.AvgIPS
		}
		return s / float64(len(r.Epochs))
	}
	lastB := base.Epochs[len(base.Epochs)-1]
	lastT := turbo.Epochs[len(turbo.Epochs)-1]

	fmt.Printf("%-22s %14s %14s\n", "", "nominal", "turbo boost")
	fmt.Printf("%-22s %14.2f %14.2f\n", "mean IPS [GIPS]", sumIPS(base)/1e9, sumIPS(turbo)/1e9)
	fmt.Printf("%-22s %14.2f %14.2f\n", "avg temp @end [K]", lastB.AvgTemp, lastT.AvgTemp)
	fmt.Printf("%-22s %14.2f %14.2f\n", "peak temp @end [K]", lastB.PeakTemp, lastT.PeakTemp)
	fmt.Printf("%-22s %14.4f %14.4f\n", "avg health @end", lastB.AvgHealth, lastT.AvgHealth)
	fmt.Printf("%-22s %14.3f %14.3f\n", "avg fmax @end [GHz]", lastB.AvgFMax/1e9, lastT.AvgFMax/1e9)
	fmt.Printf("%-22s %14d %14d\n", "DTM events", base.DTMEvents(), turbo.DTMEvents())

	gain := (sumIPS(turbo)/sumIPS(base) - 1) * 100
	cost := (lastB.AvgFMax - lastT.AvgFMax) / 1e6
	fmt.Printf("\nturbo gains %.1f%% throughput and costs %.0f MHz of aged average frequency over %.0f years\n",
		gain, cost, *years)
}
