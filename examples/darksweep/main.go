// Dark-silicon sweep: the paper evaluates at 25 % and 50 % minimum dark
// silicon; this example sweeps the dark fraction and shows how the
// headroom it creates changes aging, temperature and DTM pressure under
// both policies — the "dark silicon as an opportunity" argument of the
// paper's conclusion.
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/kit-ces/hayat"
)

func main() {
	seed := flag.Int64("seed", 1, "chip seed")
	years := flag.Float64("years", 5, "simulated lifetime")
	flag.Parse()

	fmt.Printf("%6s %8s %14s %14s %10s %10s %8s %8s\n",
		"dark", "policy", "avgF@end [GHz]", "maxF@end [GHz]", "Tavg [K]", "Tpeak [K]", "DTM", "health")

	for _, dark := range []float64{0.125, 0.25, 0.375, 0.50, 0.625} {
		cfg := hayat.DefaultConfig()
		cfg.DarkFraction = dark
		cfg.Years = *years
		sys, err := hayat.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		chip, err := sys.NewChip(*seed)
		if err != nil {
			log.Fatal(err)
		}
		for _, pol := range []hayat.Policy{hayat.PolicyVAA, hayat.PolicyHayat} {
			res, err := chip.RunLifetime(pol)
			if err != nil {
				log.Fatal(err)
			}
			last := res.Epochs[len(res.Epochs)-1]
			fmt.Printf("%5.0f%% %8s %14.3f %14.3f %10.2f %10.2f %8d %8.4f\n",
				dark*100, pol,
				last.AvgFMax/1e9, last.MaxFMax/1e9,
				last.AvgTemp, last.PeakTemp,
				res.DTMEvents(), last.AvgHealth)
		}
	}
}
