// Lifetime comparison (the paper's Fig. 11 right): run a small chip
// population under both Hayat and the VAA baseline, print the average
// frequency over the lifetime, and compute the lifetime extension Hayat
// buys at 3- and 10-year lifetime targets.
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/kit-ces/hayat"
)

func main() {
	chips := flag.Int("chips", 5, "population size (the paper uses 25)")
	years := flag.Float64("years", 10, "simulated lifetime")
	dark := flag.Float64("dark", 0.50, "minimum dark-silicon fraction")
	flag.Parse()

	cfg := hayat.DefaultConfig()
	cfg.Years = *years
	cfg.DarkFraction = *dark
	sys, err := hayat.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("running %d chips × 2 policies × %.0f years at %.0f%% dark silicon...\n",
		*chips, *years, *dark*100)
	h, err := sys.RunPopulation(1, *chips, hayat.PolicyHayat)
	if err != nil {
		log.Fatal(err)
	}
	v, err := sys.RunPopulation(1, *chips, hayat.PolicyVAA)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%8s %12s %12s\n", "year", "Hayat [GHz]", "VAA [GHz]")
	for i, y := range h.Years {
		fmt.Printf("%8.1f %12.3f %12.3f\n", y, h.AvgFMaxSeries[i]/1e9, v.AvgFMaxSeries[i]/1e9)
	}

	c, err := hayat.Compare(h, v)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnormalised to VAA:  DTM events %.3f | T over ambient %.3f | chip-fmax aging %.3f | avg-fmax aging %.3f\n",
		c.DTMEventsRatio, c.TempOverAmbientRatio, c.ChipFMaxAgingRatio, c.AvgFMaxAgingRatio)

	targets := []float64{*years}
	if *years > 3 {
		targets = append([]float64{3}, targets...)
	}
	for _, target := range targets {
		ext, thr := hayat.LifetimeExtension(h, v, target)
		fmt.Printf("required lifetime %4.1f yr → end-of-life at %.3f GHz, Hayat extension %+.2f yr\n",
			target, thr/1e9, ext)
	}
}
