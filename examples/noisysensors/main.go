// Noisy sensors: the paper assumes ideal aging sensors / health monitors
// [9, 10]. This example exercises the robustness extension: the policy
// sees per-core maximum frequencies corrupted by multiplicative Gaussian
// noise, and the engine counts how often a thread ends up on a core whose
// TRUE aged frequency cannot satisfy its requirement.
//
// It uses the internal simulation engine directly (the knob is an
// extension, not part of the paper-replication public API).
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/kit-ces/hayat/internal/core"
	"github.com/kit-ces/hayat/internal/experiments"
	"github.com/kit-ces/hayat/internal/sim"
)

func main() {
	seed := flag.Int64("seed", 1, "chip seed")
	years := flag.Float64("years", 5, "simulated lifetime")
	flag.Parse()

	p, err := experiments.NewPlatform()
	if err != nil {
		log.Fatal(err)
	}
	kit, err := p.Kit(*seed)
	if err != nil {
		log.Fatal(err)
	}
	pol, err := core.New(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%10s %12s %12s %14s %12s\n",
		"noise σ", "violations", "unmapped", "avgF@end[GHz]", "minHealth")
	for _, sigma := range []float64{0, 0.02, 0.05, 0.10, 0.20} {
		cfg := sim.DefaultConfig()
		cfg.Years = *years
		cfg.WindowSeconds = 2.0
		cfg.SensorNoiseSigma = sigma
		eng, err := sim.New(cfg, pol, kit.Chip, p.TM, p.PM, kit.Pred, kit.Table)
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			log.Fatal(err)
		}
		violations, unmapped := 0, 0
		for _, rec := range res.Records {
			violations += rec.Violations
			unmapped += rec.Unmapped
		}
		last := res.Records[len(res.Records)-1]
		fmt.Printf("%10.2f %12d %12d %14.3f %12.4f\n",
			sigma, violations, unmapped, last.AvgFMax/1e9, last.MinHealth)
	}
}
