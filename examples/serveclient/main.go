// serveclient drives hayatd the way a remote client would: it starts the
// lifetime-simulation service in-process on a random port, submits one
// population job per policy over HTTP/JSON, polls each job's per-seed
// progress, and computes the paper's Fig. 11 headline — the lifetime
// extension Hayat buys over the variability-agnostic baseline — purely
// from the JSON the service returns. It then repeats one request to show
// the content-addressed cache answering without re-simulating, submits a
// seed sweep through POST /v1/batch (one coalesced admission pass and
// journal write for the whole sweep), and closes by fetching each result's
// Merkle inclusion proof and verifying it client-side — including that a
// single flipped result byte is rejected.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"github.com/kit-ces/hayat/internal/merkle"
	"github.com/kit-ces/hayat/internal/service"
)

// httpc is the one HTTP client every request goes through. Unlike the
// bare http.Get/Post package helpers it has an explicit end-to-end
// timeout, so a wedged server can never hang the demo, and every request
// carries a context so Ctrl-C propagates as cancellation mid-poll.
var httpc = &http.Client{Timeout: 30 * time.Second}

// getJSON GETs url and decodes the JSON body into dst.
func getJSON(ctx context.Context, url string, dst any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(dst)
}

// postJSON POSTs body to url and returns the response.
func postJSON(ctx context.Context, url, body string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return httpc.Do(req)
}

// populationRecord is the slice of the service's population JSON this
// client needs: the average-frequency-over-lifetime series.
type populationRecord struct {
	Policy        string    `json:"policy"`
	Chips         int       `json:"chips"`
	Years         []float64 `json:"years"`
	AvgFMaxSeries []float64 `json:"avg_fmax_series_hz"`
}

type jobStatus struct {
	ID       string `json:"job_id"`
	State    string `json:"state"`
	Cached   bool   `json:"cached"`
	Error    string `json:"error"`
	Progress *struct {
		Done  int `json:"done"`
		Total int `json:"total"`
	} `json:"progress"`
	Result json.RawMessage `json:"result"`
}

func main() {
	rows := flag.Int("rows", 4, "core grid rows")
	cols := flag.Int("cols", 4, "core grid cols")
	years := flag.Float64("years", 7, "simulated lifetime in years")
	chips := flag.Int("chips", 3, "population size per policy")
	required := flag.Float64("required", 5, "required lifetime in years (Fig. 11 x-axis)")
	flag.Parse()

	// Ctrl-C cancels the root context and with it every in-flight
	// request and poll loop.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Start hayatd in-process on a random loopback port.
	svc, err := service.New(service.Options{Logf: log.Printf})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: svc.Handler()}
	go func() { _ = hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("hayatd listening on %s\n\n", base)

	cfgJSON := fmt.Sprintf(`{"Rows":%d,"Cols":%d,"Years":%g,"WindowSeconds":1,"MixApps":2}`,
		*rows, *cols, *years)

	records := map[string]populationRecord{}
	for _, policy := range []string{"vaa", "hayat"} {
		st := submitPopulation(ctx, base, cfgJSON, policy, *chips)
		fmt.Printf("[%s] submitted %s (%d chips)\n", policy, st.ID, *chips)
		st = pollToCompletion(ctx, base, st.ID, policy)
		var rec populationRecord
		if err := json.Unmarshal(st.Result, &rec); err != nil {
			log.Fatalf("[%s] decoding result: %v", policy, err)
		}
		records[policy] = rec
	}

	// Fig. 11, computed client-side: the baseline's average frequency at
	// the required lifetime defines end-of-life; the extension is how much
	// later Hayat's population reaches that frequency.
	base0 := records["vaa"]
	cand := records["hayat"]
	threshold := interp(base0.Years, base0.AvgFMaxSeries, *required)
	crossing, capped := crossingYear(cand.Years, cand.AvgFMaxSeries, threshold)
	ext := crossing - *required
	fmt.Printf("\nFig. 11 @ required lifetime %.1f yr:\n", *required)
	fmt.Printf("  end-of-life threshold (%s avg fmax at %.1f yr): %.3f GHz\n",
		base0.Policy, *required, threshold/1e9)
	atLeast := ""
	if capped {
		atLeast = "≥ " // Hayat never dropped to the threshold inside the horizon
	}
	fmt.Printf("  Hayat lifetime extension: %s%+.2f years\n", atLeast, ext)

	// A repeated identical request is answered from the cache.
	again := submitPopulation(ctx, base, cfgJSON, "hayat", *chips)
	fmt.Printf("\nresubmitted the Hayat job: state=%s cached=%v (no re-simulation)\n",
		again.State, again.Cached)

	demoBatchProvenance(ctx, base, *rows, *cols)

	downCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = hs.Shutdown(downCtx)
	_ = svc.Shutdown(downCtx)
}

// proofResponse mirrors GET /v1/jobs/{id}/proof.
type proofResponse struct {
	JobID   string       `json:"job_id"`
	Key     string       `json:"key"`
	Segment int          `json:"segment"`
	Root    string       `json:"segment_root"`
	Proof   merkle.Proof `json:"proof"`
}

// demoBatchProvenance runs the batch + provenance half of the demo: a
// short seed sweep submitted in ONE POST /v1/batch, then a client-side
// Merkle verification of every result.
func demoBatchProvenance(ctx context.Context, base string, rows, cols int) {
	const sweep = 4
	cfgJSON := fmt.Sprintf(`{"Rows":%d,"Cols":%d,"Years":2,"WindowSeconds":1,"MixApps":2}`, rows, cols)
	var sb strings.Builder
	sb.WriteString(`{"items":[`)
	for seed := 1; seed <= sweep; seed++ {
		if seed > 1 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"config":%s,"seed":%d,"policy":"hayat"}`, cfgJSON, seed)
	}
	sb.WriteString(`]}`)

	resp, err := postJSON(ctx, base+"/v1/batch", sb.String())
	if err != nil {
		log.Fatal(err)
	}
	var br struct {
		Results []struct {
			Index  int        `json:"index"`
			Status int        `json:"status"`
			Job    *jobStatus `json:"job"`
			Error  string     `json:"error"`
		} `json:"results"`
		Accepted int `json:"accepted"`
		Rejected int `json:"rejected"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("\nbatch: %d-seed sweep in one POST /v1/batch → %d accepted, %d rejected (one journal fsync)\n",
		sweep, br.Accepted, br.Rejected)

	for _, item := range br.Results {
		if item.Job == nil {
			log.Fatalf("batch item %d: HTTP %d %s", item.Index, item.Status, item.Error)
		}
		pollToCompletion(ctx, base, item.Job.ID, fmt.Sprintf("seed %d", item.Index+1))

		// Fetch the CANONICAL result bytes (the status envelope re-indents
		// embedded JSON; /result serves exactly what the audit leaf covers)
		// and the inclusion proof, then verify client-side — the service's
		// word is not taken for it.
		rreq, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+item.Job.ID+"/result", nil)
		if err != nil {
			log.Fatal(err)
		}
		rresp, err := httpc.Do(rreq)
		if err != nil {
			log.Fatal(err)
		}
		result, err := io.ReadAll(rresp.Body)
		rresp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		var pr proofResponse
		if err := getJSON(ctx, base+"/v1/jobs/"+item.Job.ID+"/proof", &pr); err != nil {
			log.Fatal(err)
		}
		root, err := merkle.ParseHash(pr.Root)
		if err != nil {
			log.Fatalf("job %s: bad segment root: %v", item.Job.ID, err)
		}
		if err := merkle.Verify(pr.Proof, result, root); err != nil {
			log.Fatalf("job %s: inclusion proof REJECTED: %v", item.Job.ID, err)
		}
		fmt.Printf("provenance: %s verified against segment %d root %s…\n",
			item.Job.ID, pr.Segment, pr.Root[:12])

		if item.Index == 0 {
			// Tamper demo: one flipped byte in the result must be caught.
			tampered := append([]byte(nil), result...)
			tampered[len(tampered)/2] ^= 1
			if err := merkle.Verify(pr.Proof, tampered, root); err == nil {
				log.Fatal("tampered result verified — provenance is broken")
			}
			fmt.Printf("provenance: flipped one result byte → proof rejected, as it must be\n")
		}
	}
}

func submitPopulation(ctx context.Context, base, cfgJSON, policy string, chips int) jobStatus {
	body := fmt.Sprintf(`{"config":%s,"base_seed":1,"chips":%d,"policy":%q}`, cfgJSON, chips, policy)
	resp, err := postJSON(ctx, base+"/v1/population", body)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		log.Fatalf("submit %s: HTTP %d: %s", policy, resp.StatusCode, st.Error)
	}
	return st
}

func pollToCompletion(ctx context.Context, base, id, policy string) jobStatus {
	lastDone := -1
	for {
		var st jobStatus
		if err := getJSON(ctx, base+"/v1/jobs/"+id, &st); err != nil {
			log.Fatal(err)
		}
		if st.Progress != nil && st.Progress.Done != lastDone {
			lastDone = st.Progress.Done
			fmt.Printf("[%s] %s: %d/%d chips done\n", policy, st.State, st.Progress.Done, st.Progress.Total)
		}
		switch st.State {
		case "done":
			return st
		case "failed", "cancelled":
			log.Fatalf("[%s] job %s %s: %s", policy, id, st.State, st.Error)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// interp linearly interpolates series(x) with flat extrapolation at the
// ends.
func interp(xs, ys []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if x <= xs[0] {
		return ys[0]
	}
	for i := 1; i < len(xs); i++ {
		if x <= xs[i] {
			t := (x - xs[i-1]) / (xs[i] - xs[i-1])
			return ys[i-1] + t*(ys[i]-ys[i-1])
		}
	}
	return ys[len(ys)-1]
}

// crossingYear finds when a monotonically decaying series first drops to
// the threshold; capped reports that it never did within the horizon (the
// crossing is then the horizon itself, a lower bound).
func crossingYear(xs, ys []float64, threshold float64) (year float64, capped bool) {
	for i, y := range ys {
		if y <= threshold {
			if i == 0 || ys[i-1] == y {
				return xs[i], false
			}
			t := (ys[i-1] - threshold) / (ys[i-1] - y)
			return xs[i-1] + t*(xs[i]-xs[i-1]), false
		}
	}
	return xs[len(xs)-1], true
}
