// serveclient drives hayatd the way a remote client would: it starts the
// lifetime-simulation service in-process on a random port, submits one
// population job per policy over HTTP/JSON, polls each job's per-seed
// progress, and computes the paper's Fig. 11 headline — the lifetime
// extension Hayat buys over the variability-agnostic baseline — purely
// from the JSON the service returns. It then repeats one request to show
// the content-addressed cache answering without re-simulating.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"github.com/kit-ces/hayat/internal/service"
)

// populationRecord is the slice of the service's population JSON this
// client needs: the average-frequency-over-lifetime series.
type populationRecord struct {
	Policy        string    `json:"policy"`
	Chips         int       `json:"chips"`
	Years         []float64 `json:"years"`
	AvgFMaxSeries []float64 `json:"avg_fmax_series_hz"`
}

type jobStatus struct {
	ID       string `json:"job_id"`
	State    string `json:"state"`
	Cached   bool   `json:"cached"`
	Error    string `json:"error"`
	Progress *struct {
		Done  int `json:"done"`
		Total int `json:"total"`
	} `json:"progress"`
	Result json.RawMessage `json:"result"`
}

func main() {
	rows := flag.Int("rows", 4, "core grid rows")
	cols := flag.Int("cols", 4, "core grid cols")
	years := flag.Float64("years", 7, "simulated lifetime in years")
	chips := flag.Int("chips", 3, "population size per policy")
	required := flag.Float64("required", 5, "required lifetime in years (Fig. 11 x-axis)")
	flag.Parse()

	// Start hayatd in-process on a random loopback port.
	svc, err := service.New(service.Options{Logf: log.Printf})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: svc.Handler()}
	go func() { _ = hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("hayatd listening on %s\n\n", base)

	cfgJSON := fmt.Sprintf(`{"Rows":%d,"Cols":%d,"Years":%g,"WindowSeconds":1,"MixApps":2}`,
		*rows, *cols, *years)

	records := map[string]populationRecord{}
	for _, policy := range []string{"vaa", "hayat"} {
		st := submitPopulation(base, cfgJSON, policy, *chips)
		fmt.Printf("[%s] submitted %s (%d chips)\n", policy, st.ID, *chips)
		st = pollToCompletion(base, st.ID, policy)
		var rec populationRecord
		if err := json.Unmarshal(st.Result, &rec); err != nil {
			log.Fatalf("[%s] decoding result: %v", policy, err)
		}
		records[policy] = rec
	}

	// Fig. 11, computed client-side: the baseline's average frequency at
	// the required lifetime defines end-of-life; the extension is how much
	// later Hayat's population reaches that frequency.
	base0 := records["vaa"]
	cand := records["hayat"]
	threshold := interp(base0.Years, base0.AvgFMaxSeries, *required)
	crossing, capped := crossingYear(cand.Years, cand.AvgFMaxSeries, threshold)
	ext := crossing - *required
	fmt.Printf("\nFig. 11 @ required lifetime %.1f yr:\n", *required)
	fmt.Printf("  end-of-life threshold (%s avg fmax at %.1f yr): %.3f GHz\n",
		base0.Policy, *required, threshold/1e9)
	atLeast := ""
	if capped {
		atLeast = "≥ " // Hayat never dropped to the threshold inside the horizon
	}
	fmt.Printf("  Hayat lifetime extension: %s%+.2f years\n", atLeast, ext)

	// A repeated identical request is answered from the cache.
	again := submitPopulation(base, cfgJSON, "hayat", *chips)
	fmt.Printf("\nresubmitted the Hayat job: state=%s cached=%v (no re-simulation)\n",
		again.State, again.Cached)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = hs.Shutdown(ctx)
	_ = svc.Shutdown(ctx)
}

func submitPopulation(base, cfgJSON, policy string, chips int) jobStatus {
	body := fmt.Sprintf(`{"config":%s,"base_seed":1,"chips":%d,"policy":%q}`, cfgJSON, chips, policy)
	resp, err := http.Post(base+"/v1/population", "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		log.Fatalf("submit %s: HTTP %d: %s", policy, resp.StatusCode, st.Error)
	}
	return st
}

func pollToCompletion(base, id, policy string) jobStatus {
	lastDone := -1
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			log.Fatal(err)
		}
		var st jobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		if st.Progress != nil && st.Progress.Done != lastDone {
			lastDone = st.Progress.Done
			fmt.Printf("[%s] %s: %d/%d chips done\n", policy, st.State, st.Progress.Done, st.Progress.Total)
		}
		switch st.State {
		case "done":
			return st
		case "failed", "cancelled":
			log.Fatalf("[%s] job %s %s: %s", policy, id, st.State, st.Error)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// interp linearly interpolates series(x) with flat extrapolation at the
// ends.
func interp(xs, ys []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if x <= xs[0] {
		return ys[0]
	}
	for i := 1; i < len(xs); i++ {
		if x <= xs[i] {
			t := (x - xs[i-1]) / (xs[i] - xs[i-1])
			return ys[i-1] + t*(ys[i]-ys[i-1])
		}
	}
	return ys[len(ys)-1]
}

// crossingYear finds when a monotonically decaying series first drops to
// the threshold; capped reports that it never did within the horizon (the
// crossing is then the horizon itself, a lower bound).
func crossingYear(xs, ys []float64, threshold float64) (year float64, capped bool) {
	for i, y := range ys {
		if y <= threshold {
			if i == 0 || ys[i-1] == y {
				return xs[i], false
			}
			t := (ys[i-1] - threshold) / (ys[i-1] - y)
			return xs[i-1] + t*(xs[i]-xs[i-1]), false
		}
	}
	return xs[len(xs)-1], true
}
