// Quickstart: simulate one chip's 10-year lifetime under the Hayat
// aging-management policy and print the headline numbers.
package main

import (
	"fmt"
	"log"

	"github.com/kit-ces/hayat"
)

func main() {
	// The default configuration is the paper's setup: an 8×8 manycore at
	// 50 % dark silicon, simulated for 10 years in 3-month aging epochs.
	sys, err := hayat.NewSystem(hayat.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Draw one manufactured die. The seed fully determines the chip's
	// process-variation maps, its learned thermal predictor and its
	// offline 3D aging tables.
	chip, err := sys.NewChip(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chip 1: core-to-core frequency spread %.1f%%\n", chip.FrequencySpread()*100)

	res, err := chip.RunLifetime(hayat.PolicyHayat)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("average frequency: %.3f GHz (year 0) → %.3f GHz (year 10)\n",
		res.AverageFrequencyAt(0)/1e9, res.AverageFrequencyAt(10)/1e9)
	last := res.Epochs[len(res.Epochs)-1]
	fmt.Printf("final chip health: avg %.4f, min %.4f\n", last.AvgHealth, last.MinHealth)
	fmt.Printf("DTM events over the lifetime: %d\n", res.DTMEvents())
}
