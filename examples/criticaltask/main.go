// Critical-task headroom (the paper's Fig. 9 argument): a deadline-
// critical single-threaded application needs one very fast core. Hayat
// deliberately preserves the chip's fastest cores — matching threads to
// cores that are just fast enough — so that headroom survives into late
// lifetime years, while the max-throughput baseline burns the fast cores
// early. This example tracks the fastest available core over the lifetime
// under both policies and reports when each can no longer host a critical
// task of a given frequency demand.
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/kit-ces/hayat"
)

func main() {
	seed := flag.Int64("seed", 1, "chip seed")
	years := flag.Float64("years", 10, "simulated lifetime")
	demandGHz := flag.Float64("demand", 3.4, "critical task frequency demand in GHz")
	flag.Parse()

	cfg := hayat.DefaultConfig()
	cfg.Years = *years
	// 25 % dark silicon: the contended setting where preservation matters
	// most (at 50 % even the baseline rarely needs the fastest cores).
	cfg.DarkFraction = 0.25
	sys, err := hayat.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	chip, err := sys.NewChip(*seed)
	if err != nil {
		log.Fatal(err)
	}

	demand := *demandGHz * 1e9
	init := chip.InitialFrequencies()
	eligible0 := 0
	for _, f := range init {
		if f >= demand {
			eligible0++
		}
	}
	fmt.Printf("chip %d: %d/%d cores can host a %.1f GHz critical task at year 0\n\n",
		*seed, eligible0, len(init), *demandGHz)

	results := map[hayat.Policy]*hayat.LifetimeResult{}
	for _, pol := range []hayat.Policy{hayat.PolicyVAA, hayat.PolicyHayat} {
		res, err := chip.RunLifetime(pol)
		if err != nil {
			log.Fatal(err)
		}
		results[pol] = res
	}

	fmt.Printf("%8s %16s %16s\n", "year", "VAA maxF [GHz]", "Hayat maxF [GHz]")
	v, h := results[hayat.PolicyVAA], results[hayat.PolicyHayat]
	for i := range v.Epochs {
		if i%4 != 3 { // print yearly
			continue
		}
		fmt.Printf("%8.1f %16.3f %16.3f\n",
			v.Epochs[i].YearsElapsed, v.Epochs[i].MaxFMax/1e9, h.Epochs[i].MaxFMax/1e9)
	}

	fmt.Println()
	for pol, res := range results {
		lost := -1.0
		for _, e := range res.Epochs {
			if e.MaxFMax < demand {
				lost = e.YearsElapsed
				break
			}
		}
		endEligible := 0
		for _, f := range res.FinalFMax {
			if f >= demand {
				endEligible++
			}
		}
		if lost < 0 {
			fmt.Printf("%-6s: critical-task headroom survives the full %.0f years (%d eligible cores at end of life)\n",
				pol, *years, endEligible)
		} else {
			fmt.Printf("%-6s: critical-task headroom LOST after %.2f years (%d eligible cores at end of life)\n",
				pol, lost, endEligible)
		}
	}
}
