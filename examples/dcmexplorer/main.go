// DCM explorer (the paper's Fig. 2 analysis): visualise how the mapping
// policy shapes the Dark Core Map and, through it, the chip's thermal and
// aging profile. Runs one chip under the clustering VAA baseline and under
// Hayat, then renders initial/aged frequency maps and health heat maps.
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/kit-ces/hayat"
)

func main() {
	seed := flag.Int64("seed", 1, "chip seed")
	years := flag.Float64("years", 10, "simulated lifetime")
	flag.Parse()

	cfg := hayat.DefaultConfig()
	cfg.Years = *years
	sys, err := hayat.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	chip, err := sys.NewChip(*seed)
	if err != nil {
		log.Fatal(err)
	}

	ghz := func(v []float64) []float64 {
		out := make([]float64, len(v))
		for i, f := range v {
			out[i] = f / 1e9
		}
		return out
	}

	fmt.Printf("chip %d initial frequencies [GHz] (spread %.1f%%):\n%s\n",
		*seed, chip.FrequencySpread()*100,
		sys.RenderNumericMap(ghz(chip.InitialFrequencies()), "%4.2f"))

	for _, pol := range []hayat.Policy{hayat.PolicyVAA, hayat.PolicyHayat} {
		res, err := chip.RunLifetime(pol)
		if err != nil {
			log.Fatal(err)
		}
		last := res.Epochs[len(res.Epochs)-1]
		fmt.Printf("--- %s (%s DCM) after %.0f years ---\n", pol,
			map[hayat.Policy]string{hayat.PolicyVAA: "contiguous", hayat.PolicyHayat: "optimised"}[pol],
			*years)
		fmt.Printf("aged frequencies [GHz]:\n%s", sys.RenderNumericMap(ghz(res.FinalFMax), "%4.2f"))
		fmt.Printf("aging heat map (darker glyph = more degraded):\n%s",
			sys.RenderHeatMap(negate(res.FinalHealth), 0, 0))
		fmt.Printf("avg temp %.2f K | peak temp %.2f K | DTM events %d | avg health %.4f\n\n",
			last.AvgTemp, last.PeakTemp, res.DTMEvents(), last.AvgHealth)
	}
}

// negate flips health into "degradation" so hotter glyphs mean more aging.
func negate(health []float64) []float64 {
	out := make([]float64, len(health))
	for i, h := range health {
		out[i] = 1 - h
	}
	return out
}
