// Package hayat is a pure-Go reproduction of "Hayat: Harnessing Dark
// Silicon and Variability for Aging Deceleration and Balancing"
// (Gnad, Shafique, Kriebel, Rehman, Sun, Henkel — DAC 2015).
//
// It simulates the lifetime of dark-silicon manycore chips under NBTI
// aging and compares the paper's run-time aging-management system (Hayat)
// against the extended smart-hill-climbing baseline (VAA). The library
// bundles every substrate the paper's evaluation depends on: a
// spatially-correlated process-variation model, a compact RC thermal
// simulator, a McPAT-style power model, reaction–diffusion NBTI aging with
// offline 3D aging tables, an online thermal-profile predictor, synthetic
// Parsec-like workloads, dynamic thermal management, and an epoch-based
// accelerated-aging engine.
//
// # Quick start
//
//	sys, err := hayat.NewSystem(hayat.DefaultConfig())
//	chip, err := sys.NewChip(1)
//	res, err := chip.RunLifetime(hayat.PolicyHayat)
//	fmt.Println(res.AverageFrequencyAt(10))
//
// All behaviour is deterministic in the (config, chip seed) pair.
package hayat

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"

	"github.com/kit-ces/hayat/internal/aging"
	"github.com/kit-ces/hayat/internal/baseline"
	"github.com/kit-ces/hayat/internal/core"
	"github.com/kit-ces/hayat/internal/dtm"
	"github.com/kit-ces/hayat/internal/dvfs"
	"github.com/kit-ces/hayat/internal/floorplan"
	"github.com/kit-ces/hayat/internal/gates"
	"github.com/kit-ces/hayat/internal/policy"
	"github.com/kit-ces/hayat/internal/power"
	"github.com/kit-ces/hayat/internal/report"
	"github.com/kit-ces/hayat/internal/sim"
	"github.com/kit-ces/hayat/internal/thermal"
	"github.com/kit-ces/hayat/internal/thermpredict"
	"github.com/kit-ces/hayat/internal/variation"
)

// Policy selects the run-time mapping policy.
type Policy int

const (
	// PolicyHayat is the paper's contribution: variation- and
	// dark-silicon-aware aging management (Algorithm 1).
	PolicyHayat Policy = iota
	// PolicyVAA is the comparison baseline: the variability- and
	// aging-aware extension of smart-hill-climbing contiguous mapping.
	PolicyVAA
)

// String returns the policy's report name.
func (p Policy) String() string {
	switch p {
	case PolicyHayat:
		return "Hayat"
	case PolicyVAA:
		return "VAA"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy maps a case-insensitive policy name ("hayat", "vaa") to its
// Policy value.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "hayat":
		return PolicyHayat, nil
	case "vaa":
		return PolicyVAA, nil
	default:
		return 0, fmt.Errorf("hayat: unknown policy %q", s)
	}
}

// Config controls the simulated platform and lifetime experiment. Zero
// values are invalid; start from DefaultConfig.
type Config struct {
	// Rows, Cols define the core grid (paper: 8×8).
	Rows, Cols int
	// DarkFraction is the minimum dark-silicon fraction (0.25 or 0.50).
	DarkFraction float64
	// Years is the simulated lifetime; EpochYears the aging epoch.
	Years, EpochYears float64
	// WindowSeconds/StepSeconds control the fine-grained transient
	// thermal simulation inside each epoch.
	WindowSeconds, StepSeconds float64
	// MixApps, MixSeed and RemixEpochs control workload-mix generation.
	MixApps     int
	MixSeed     int64
	RemixEpochs int
	// TSafe is the DTM limit in Kelvin (paper: 368.15 K = 95 °C).
	TSafe float64
	// DutyMode is "known", "generic" (50 %) or "worst" (100 %).
	DutyMode string
	// AgingModel selects the wear-out physics: "nbti" (the paper's model,
	// default) or "nbti+hci" (the composite extension adding hot-carrier
	// injection).
	AgingModel string
	// FreqLadderGHz optionally quantises frequencies to discrete DVFS
	// levels (ascending, in GHz). Empty means the paper's continuous
	// core-level frequency scaling.
	FreqLadderGHz []float64
	// TurboBoost lets threads overclock to their core's aged f_max while
	// the core sits below TSafe − TurboMarginK (extension; the paper
	// cites Turbo Boost as an aging aggravator).
	TurboBoost   bool
	TurboMarginK float64
	// SensorNoiseSigma corrupts the health monitors' frequency readings
	// with multiplicative Gaussian noise (extension; 0 = ideal sensors).
	SensorNoiseSigma float64
	// MigrationStallSeconds is the throughput cost of one DTM migration
	// (0 disables the cost model; the default models a cache refill).
	MigrationStallSeconds float64
	// Workers bounds the intra-epoch parallelism of one simulation: 0
	// uses GOMAXPROCS, 1 forces the serial path. It is an execution
	// property, not a simulation parameter — results are bit-identical
	// for every value — so it is excluded from serialisation and from
	// result-cache keys (and cannot be set through the hayatd API; see
	// the server's -sim-workers flag).
	//lint:ignore key-completeness execution property: results are bit-identical for every worker count (determinism suite), so the key must not split on it
	Workers int `json:"-"`
}

// DefaultConfig returns the paper's experimental setup: 8×8 cores, 50 %
// dark silicon, 10 years in 3-month epochs.
func DefaultConfig() Config {
	sc := sim.DefaultConfig()
	return Config{
		Rows: floorplan.DefaultRows, Cols: floorplan.DefaultCols,
		DarkFraction:          sc.DarkFraction,
		Years:                 sc.Years,
		EpochYears:            sc.EpochYears,
		WindowSeconds:         sc.WindowSeconds,
		StepSeconds:           sc.StepSeconds,
		MixApps:               sc.MixApps,
		MixSeed:               sc.MixSeed,
		RemixEpochs:           sc.RemixEpochs,
		TSafe:                 sc.DTM.TSafe,
		DutyMode:              "known",
		AgingModel:            "nbti",
		MigrationStallSeconds: sc.MigrationStallSeconds,
	}
}

func (c Config) agingModel(seed int64) (aging.FactorModel, error) {
	paths := gates.Generate(gates.DefaultGenerateConfig(), seed)
	switch c.AgingModel {
	case "", "nbti":
		return aging.NewCoreAging(aging.DefaultParams(), paths), nil
	case "nbti+hci":
		return aging.NewCompositeCoreAging(aging.DefaultParams(), aging.DefaultHCIParams(), paths)
	default:
		return nil, fmt.Errorf("hayat: unknown aging model %q", c.AgingModel)
	}
}

func (c Config) dutyMode() (policy.DutyMode, error) {
	switch c.DutyMode {
	case "", "known":
		return policy.DutyKnown, nil
	case "generic":
		return policy.DutyGeneric, nil
	case "worst":
		return policy.DutyWorstCase, nil
	default:
		return 0, fmt.Errorf("hayat: unknown duty mode %q", c.DutyMode)
	}
}

func (c Config) simConfig() sim.Config {
	sc := sim.DefaultConfig()
	sc.DarkFraction = c.DarkFraction
	sc.Years = c.Years
	sc.EpochYears = c.EpochYears
	sc.WindowSeconds = c.WindowSeconds
	sc.StepSeconds = c.StepSeconds
	sc.MixApps = c.MixApps
	sc.MixSeed = c.MixSeed
	sc.RemixEpochs = c.RemixEpochs
	sc.DTM.TSafe = c.TSafe
	sc.TurboBoost = c.TurboBoost
	sc.TurboMarginK = c.TurboMarginK
	sc.SensorNoiseSigma = c.SensorNoiseSigma
	sc.MigrationStallSeconds = c.MigrationStallSeconds
	sc.Workers = c.Workers
	if len(c.FreqLadderGHz) > 0 {
		levels := make(dvfs.Levels, len(c.FreqLadderGHz))
		for i, g := range c.FreqLadderGHz {
			levels[i] = g * 1e9
		}
		sc.FreqLevels = levels
	}
	return sc
}

// Validate reports configuration errors without building any platform
// model (the same checks NewSystem performs before its expensive setup).
func (c Config) Validate() error {
	if c.Rows <= 0 || c.Cols <= 0 {
		return fmt.Errorf("hayat: invalid grid %d×%d", c.Rows, c.Cols)
	}
	if _, err := c.dutyMode(); err != nil {
		return err
	}
	if _, err := c.agingModel(0); err != nil {
		return err
	}
	return c.simConfig().Validate()
}

// System is the simulated platform: floorplan, thermal stack, power model
// and variation generator. One System can stamp out many chips.
type System struct {
	cfg  Config
	fp   *floorplan.Floorplan
	tm   *thermal.Model
	pm   power.Model
	gen  *variation.Generator
	arts *ArtifactCache

	stageObs sim.StageObserver
}

// SetStageObserver installs a per-stage epoch timing hook (see
// sim.StageObserver) on every engine subsequently created from this
// System's chips. Call it before handing chips out; it is not safe to
// call concurrently with runs. A nil observer (the default) costs
// nothing.
func (s *System) SetStageObserver(obs sim.StageObserver) { s.stageObs = obs }

// NewSystem validates the configuration and assembles the platform
// models.
func NewSystem(cfg Config) (*System, error) {
	return NewSystemWith(cfg, nil)
}

// NewSystemWith is NewSystem with a shared artifact cache: the thermal
// model (with its LU factorisation) and the variation generator (with its
// Cholesky factor) are reused across Systems on the same grid, and chips
// stamped from this System share their learned predictors and 3D aging
// tables through the cache as well. A nil cache disables sharing. All
// Systems passing the same cache must use the default platform models
// (they do: thermal config, core dimensions and the variation model are
// fixed by this package), since cache keys only carry grid size, seed and
// aging model.
func NewSystemWith(cfg Config, cache *ArtifactCache) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pf, err := cache.platform(cfg.Rows, cfg.Cols)
	if err != nil {
		return nil, err
	}
	return &System{cfg: cfg, fp: pf.fp, tm: pf.tm, pm: power.DefaultModel(), gen: pf.gen, arts: cache}, nil
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Cores returns the number of cores.
func (s *System) Cores() int { return s.fp.N() }

// Ambient returns the ambient temperature in Kelvin.
func (s *System) Ambient() float64 { return s.tm.Ambient() }

// Chip is one manufactured die with its learned thermal predictor and
// offline aging tables.
type Chip struct {
	sys  *System
	chip *variation.Chip
	pred *thermpredict.Predictor
	ca   aging.FactorModel
	tab  *aging.Table3D
}

// NewChip draws a die from the process-variation model (deterministic in
// the seed), learns its thermal predictor and builds its 3D aging tables
// — the "start-up time effort for a given chip" of Section IV-B. The
// aging physics follow Config.AgingModel.
func (s *System) NewChip(seed int64) (*Chip, error) {
	chip := s.gen.Chip(seed)
	pred, err := s.arts.predictor(s, chip)
	if err != nil {
		return nil, err
	}
	ca, err := s.cfg.agingModel(seed)
	if err != nil {
		return nil, err
	}
	tab, err := s.arts.table(s.cfg.AgingModel, seed, ca)
	if err != nil {
		return nil, err
	}
	return &Chip{sys: s, chip: chip, pred: pred, ca: ca, tab: tab}, nil
}

// Seed returns the chip's manufacturing seed.
func (c *Chip) Seed() int64 { return c.chip.Seed }

// InitialFrequencies returns the per-core year-0 maximum safe frequencies
// in Hz (row-major on the grid).
func (c *Chip) InitialFrequencies() []float64 {
	return append([]float64(nil), c.chip.FMax0...)
}

// LeakageFactors returns the per-core variation leakage multipliers.
func (c *Chip) LeakageFactors() []float64 {
	return append([]float64(nil), c.chip.LeakFactor...)
}

// FrequencySpread returns (f_max − f_min)/f_max across cores — the
// paper's ~30–35 % core-to-core variation figure.
func (c *Chip) FrequencySpread() float64 { return c.chip.FrequencySpread() }

// Epoch is one aging epoch's outcome (see the paper's Fig. 4 evaluation
// scheme).
type Epoch struct {
	Index        int
	YearsElapsed float64
	AvgHealth    float64
	MinHealth    float64
	AvgFMax      float64 // Hz
	MaxFMax      float64 // Hz
	AvgTemp      float64 // K
	PeakTemp     float64 // K
	MaxSwing     float64 // K, largest per-core thermal swing in the window
	DTMEvents    int
	Mapped       int
	Unmapped     int
	AvgIPS       float64
}

// LifetimeResult is one chip's simulated lifetime under one policy.
type LifetimeResult struct {
	Policy       string
	ChipSeed     int64
	DarkFraction float64
	Epochs       []Epoch
	// InitialFMax/FinalFMax/FinalHealth are per-core (Hz / Hz / fraction).
	InitialFMax []float64
	FinalFMax   []float64
	FinalHealth []float64
	// DTMMigrations + DTMThrottles = total DTM events.
	DTMMigrations, DTMThrottles int

	res *sim.Result
}

// DTMEvents returns the total DTM event count.
func (r *LifetimeResult) DTMEvents() int { return r.DTMMigrations + r.DTMThrottles }

// AverageFrequencyAt returns the chip-average aged maximum frequency (Hz)
// after the given number of years, interpolated between epochs.
func (r *LifetimeResult) AverageFrequencyAt(years float64) float64 {
	return r.res.AvgFMaxAt(years)
}

// RunLifetime simulates the chip's whole lifetime under the given policy.
func (c *Chip) RunLifetime(p Policy) (*LifetimeResult, error) {
	//lint:ignore ctxfirst compatibility wrapper: context-free callers get the uncancellable root by design
	return c.RunLifetimeContext(context.Background(), p)
}

// RunLifetimeContext is RunLifetime with cooperative cancellation: the
// context is checked at every epoch boundary, so cancelling actually
// stops the simulation work before the next epoch's transient window. The
// returned error wraps ctx.Err() and names the epoch reached.
func (c *Chip) RunLifetimeContext(ctx context.Context, p Policy) (*LifetimeResult, error) {
	return c.runLifetime(ctx, p, nil, nil, 0)
}

// RunLifetimeCheckpointed runs the first uptoEpoch epochs, writes a JSON
// checkpoint to w, and stops. Resume with ResumeLifetime. uptoEpoch must
// be a workload-remix boundary (multiple of the remix interval).
func (c *Chip) RunLifetimeCheckpointed(p Policy, uptoEpoch int, w io.Writer) error {
	eng, err := c.newEngine(p)
	if err != nil {
		return err
	}
	cp, err := eng.RunCheckpoint(uptoEpoch)
	if err != nil {
		return err
	}
	return sim.WriteCheckpoint(w, cp)
}

// RunLifetimeCheckpointedFile is RunLifetimeCheckpointed writing the
// checkpoint atomically (temp file + rename), so an interrupted write can
// never leave a torn checkpoint at path.
func (c *Chip) RunLifetimeCheckpointedFile(p Policy, uptoEpoch int, path string) error {
	eng, err := c.newEngine(p)
	if err != nil {
		return err
	}
	cp, err := eng.RunCheckpoint(uptoEpoch)
	if err != nil {
		return err
	}
	return sim.WriteCheckpointFile(path, cp)
}

// ResumeLifetime continues a checkpointed run (same chip seed, policy and
// configuration) to the end of the lifetime.
func (c *Chip) ResumeLifetime(p Policy, r io.Reader) (*LifetimeResult, error) {
	eng, err := c.newEngine(p)
	if err != nil {
		return nil, err
	}
	cp, err := sim.ReadCheckpoint(r)
	if err != nil {
		return nil, err
	}
	res, err := eng.Resume(cp)
	if err != nil {
		return nil, err
	}
	return wrapResult(res), nil
}

// ResumeLifetimeFile is ResumeLifetime reading the checkpoint from path.
func (c *Chip) ResumeLifetimeFile(p Policy, path string) (*LifetimeResult, error) {
	eng, err := c.newEngine(p)
	if err != nil {
		return nil, err
	}
	cp, err := sim.ReadCheckpointFile(path)
	if err != nil {
		return nil, err
	}
	res, err := eng.Resume(cp)
	if err != nil {
		return nil, err
	}
	return wrapResult(res), nil
}

// CheckpointSink receives serialised engine checkpoints during a
// checkpointed lifetime run: nextEpoch is the first epoch not yet
// simulated, checkpoint the JSON blob ResumeLifetimeWithCheckpoints
// accepts. Returning an error aborts the run; sinks that persist
// best-effort should log and return nil.
type CheckpointSink func(nextEpoch int, checkpoint []byte) error

// RunLifetimeWithCheckpoints is RunLifetimeContext with periodic
// checkpointing: sink is invoked at every workload-remix boundary that is
// a multiple of everyEpochs (everyEpochs ≤ the remix interval means every
// boundary). On configurations without remix boundaries it degrades to a
// plain run.
func (c *Chip) RunLifetimeWithCheckpoints(ctx context.Context, p Policy, everyEpochs int, sink CheckpointSink) (*LifetimeResult, error) {
	eng, err := c.newEngine(p)
	if err != nil {
		return nil, err
	}
	res, err := eng.RunContextCheckpointed(ctx, everyEpochs, wrapSink(sink))
	if err != nil {
		return nil, err
	}
	return wrapResult(res), nil
}

// ResumeLifetimeWithCheckpoints continues from a serialised checkpoint
// (same chip seed, policy and configuration) with the same periodic
// checkpointing as RunLifetimeWithCheckpoints. The completed result is
// identical to an uninterrupted run's.
func (c *Chip) ResumeLifetimeWithCheckpoints(ctx context.Context, p Policy, checkpoint []byte, everyEpochs int, sink CheckpointSink) (*LifetimeResult, error) {
	eng, err := c.newEngine(p)
	if err != nil {
		return nil, err
	}
	cp, err := sim.ReadCheckpoint(bytes.NewReader(checkpoint))
	if err != nil {
		return nil, err
	}
	res, err := eng.ResumeContextCheckpointed(ctx, cp, everyEpochs, wrapSink(sink))
	if err != nil {
		return nil, err
	}
	return wrapResult(res), nil
}

// wrapSink adapts a public CheckpointSink to the engine's, serialising
// each checkpoint to JSON.
func wrapSink(sink CheckpointSink) sim.CheckpointSink {
	if sink == nil {
		return nil
	}
	return func(cp *sim.Checkpoint) error {
		var buf bytes.Buffer
		if err := sim.WriteCheckpoint(&buf, cp); err != nil {
			return err
		}
		return sink(cp.NextEpoch, buf.Bytes())
	}
}

// newEngine wires a simulation engine for this chip and policy.
func (c *Chip) newEngine(p Policy) (*sim.Engine, error) {
	pol, err := buildPolicy(p)
	if err != nil {
		return nil, err
	}
	sc := c.sys.cfg.simConfig()
	dm, err := c.sys.cfg.dutyMode()
	if err != nil {
		return nil, err
	}
	sc.DutyMode = dm
	eng, err := sim.New(sc, pol, c.chip, c.sys.tm, c.sys.pm, c.pred, c.tab)
	if err != nil {
		return nil, err
	}
	eng.SetStageObserver(c.sys.stageObs)
	return eng, nil
}

// RunLifetimeTraced is RunLifetime with a fine-grained trace: when trace
// is non-nil, per-step temperatures and powers of the selected cores (all
// cores when cores is nil) are written as TSV every `everySteps` transient
// steps.
func (c *Chip) RunLifetimeTraced(p Policy, trace io.Writer, cores []int, everySteps int) (*LifetimeResult, error) {
	//lint:ignore ctxfirst compatibility wrapper: context-free callers get the uncancellable root by design
	return c.runLifetime(context.Background(), p, trace, cores, everySteps)
}

// runLifetime wires an engine, attaches the optional trace sink and runs
// the lifetime under ctx.
func (c *Chip) runLifetime(ctx context.Context, p Policy, trace io.Writer, cores []int, everySteps int) (*LifetimeResult, error) {
	eng, err := c.newEngine(p)
	if err != nil {
		return nil, err
	}
	var sink *sim.TSVTrace
	if trace != nil {
		sink = sim.NewTSVTrace(trace, cores)
		if err := eng.SetTrace(sink, everySteps); err != nil {
			return nil, err
		}
	}
	res, err := eng.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	if sink != nil && sink.Err() != nil {
		return nil, sink.Err()
	}
	return wrapResult(res), nil
}

func buildPolicy(p Policy) (policy.Policy, error) {
	switch p {
	case PolicyHayat:
		return core.New(core.DefaultConfig())
	case PolicyVAA:
		return baseline.New(baseline.DefaultConfig())
	default:
		return nil, fmt.Errorf("hayat: unknown policy %v", p)
	}
}

func wrapResult(res *sim.Result) *LifetimeResult {
	r := &LifetimeResult{
		Policy:        res.Policy,
		ChipSeed:      res.ChipSeed,
		DarkFraction:  res.Config.DarkFraction,
		InitialFMax:   append([]float64(nil), res.InitialFMax...),
		FinalFMax:     append([]float64(nil), res.FinalFMax...),
		FinalHealth:   append([]float64(nil), res.FinalHealth...),
		DTMMigrations: res.TotalDTM.Migrations,
		DTMThrottles:  res.TotalDTM.Throttles,
		res:           res,
	}
	for _, rec := range res.Records {
		r.Epochs = append(r.Epochs, Epoch{
			Index:        rec.Epoch,
			YearsElapsed: rec.YearsElapsed,
			AvgHealth:    rec.AvgHealth,
			MinHealth:    rec.MinHealth,
			AvgFMax:      rec.AvgFMax,
			MaxFMax:      rec.MaxFMax,
			AvgTemp:      rec.AvgTemp,
			PeakTemp:     rec.PeakTemp,
			MaxSwing:     rec.MaxSwing,
			DTMEvents:    rec.DTMEvents,
			Mapped:       rec.Mapped,
			Unmapped:     rec.Unmapped,
			AvgIPS:       rec.AvgIPS,
		})
	}
	return r
}

// RenderHeatMap renders per-core values as an ASCII heat map on the
// system's grid. lo == hi auto-scales.
func (s *System) RenderHeatMap(values []float64, lo, hi float64) string {
	return report.HeatMap(values, s.fp.Rows, s.fp.Cols, lo, hi)
}

// RenderNumericMap renders per-core values as a numeric grid with the
// given printf format.
func (s *System) RenderNumericMap(values []float64, format string) string {
	return report.NumericMap(values, s.fp.Rows, s.fp.Cols, format)
}

// TSafeDefault is the paper's thermal limit (95 °C) in Kelvin.
const TSafeDefault = 368.15

// compile-time interface checks for the wired policies.
var (
	_ policy.Policy = (*core.Hayat)(nil)
	_ policy.Policy = (*baseline.VAA)(nil)
	_               = dtm.DefaultConfig
)
