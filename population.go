package hayat

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/kit-ces/hayat/internal/metrics"
	"github.com/kit-ces/hayat/internal/persist"
	"github.com/kit-ces/hayat/internal/sim"
)

// PopulationResult aggregates one policy's lifetime results over a chip
// population — the "25 different chips" of Figs. 7–11.
type PopulationResult struct {
	Policy       string
	DarkFraction float64
	Chips        int
	Results      []*LifetimeResult

	// TotalDTMEvents across the population (Fig. 7's quantity).
	TotalDTMEvents int
	// MeanTempOverAmbient is the population mean lifetime-average
	// temperature rise over ambient in Kelvin (Fig. 8).
	MeanTempOverAmbient float64
	// ChipFMaxAging is the mean degradation of the single fastest core's
	// frequency in Hz over the lifetime (Fig. 9).
	ChipFMaxAging float64
	// AvgFMaxAging is the mean degradation of the chip-average frequency
	// in Hz over the lifetime (Fig. 10).
	AvgFMaxAging float64
	// Years/AvgFMaxSeries trace the population-average frequency over the
	// lifetime (Fig. 11 right).
	Years         []float64
	AvgFMaxSeries []float64

	summary metrics.Summary
}

// RunPopulation simulates `chips` dies (seeds baseSeed, baseSeed+1, …)
// under the given policy and aggregates the results. Chips are
// independent, so they run on parallel workers (up to GOMAXPROCS); the
// aggregated result is deterministic regardless of scheduling because
// results are collected in seed order.
func (s *System) RunPopulation(baseSeed int64, chips int, p Policy) (*PopulationResult, error) {
	//lint:ignore ctxfirst compatibility wrapper: context-free callers get the uncancellable root by design
	return s.RunPopulationContext(context.Background(), baseSeed, chips, p)
}

// RunPopulationContext is RunPopulation with cooperative cancellation:
// every chip's lifetime run checks the context at epoch boundaries, and
// the first error (or cancellation) aborts the chips still queued or
// simulating instead of letting the rest of the population run to
// completion. The returned error is the first one observed; on
// cancellation it wraps ctx.Err().
func (s *System) RunPopulationContext(ctx context.Context, baseSeed int64, chips int, p Policy) (*PopulationResult, error) {
	return s.RunPopulationProgress(ctx, baseSeed, chips, p, nil)
}

// RunPopulationProgress is RunPopulationContext with per-chip progress
// reporting: after each chip's lifetime completes, progress is called
// with the number of finished chips and the population size. It may be
// called concurrently from worker goroutines; the done count is
// monotonically increasing across calls. A nil progress is allowed.
func (s *System) RunPopulationProgress(ctx context.Context, baseSeed int64, chips int, p Policy, progress func(done, total int)) (*PopulationResult, error) {
	return s.RunPopulationResumable(ctx, baseSeed, chips, p, progress, nil)
}

// ChipResultStore persists per-chip lifetime results so an interrupted
// population run can resume without recomputing finished chips: Save is
// called with each completed chip's serialised result, Load is consulted
// before a chip is simulated. The stored blob is the chip's raw result
// JSON; it round-trips exactly, so a resumed population is byte-identical
// to an uninterrupted one. Implementations may be best-effort (a Load
// miss or swallowed Save just costs recomputation) but must be safe for
// concurrent use.
type ChipResultStore interface {
	Load(seed int64) ([]byte, bool)
	Save(seed int64, data []byte) error
}

// RunPopulationResumable is RunPopulationProgress with an optional
// ChipResultStore: chips whose results the store already holds are
// restored instead of simulated. A nil store disables persistence.
func (s *System) RunPopulationResumable(ctx context.Context, baseSeed int64, chips int, p Policy, progress func(done, total int), store ChipResultStore) (*PopulationResult, error) {
	if chips <= 0 {
		return nil, fmt.Errorf("hayat: population size must be positive, got %d", chips)
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	pr := &PopulationResult{Policy: p.String(), DarkFraction: s.cfg.DarkFraction, Chips: chips}
	results := make([]*LifetimeResult, chips)
	var (
		firstErr  error
		errOnce   sync.Once
		doneCount atomic.Int64
	)
	// fail records the first error and cancels everything still running;
	// later failures (typically the cancellations it caused) are dropped.
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	//lint:ignore determinism worker count only changes which goroutine simulates a chip; every chip is seeded by index and results land in slot order
	workers := runtime.GOMAXPROCS(0)
	if workers > chips {
		workers = chips
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if runCtx.Err() != nil {
					continue // aborted: drain the queue without simulating
				}
				seed := baseSeed + int64(i)
				if res, ok := loadChipResult(store, seed, p); ok {
					results[i] = res
					if progress != nil {
						progress(int(doneCount.Add(1)), chips)
					}
					continue
				}
				chip, err := s.NewChip(seed)
				if err != nil {
					fail(err)
					continue
				}
				res, err := chip.RunLifetimeContext(runCtx, p)
				if err != nil {
					fail(err)
					continue
				}
				saveChipResult(store, seed, res)
				results[i] = res
				if progress != nil {
					progress(int(doneCount.Add(1)), chips)
				}
			}
		}()
	}
feed:
	for i := 0; i < chips; i++ {
		//lint:ignore determinism the race only decides whether a chip still starts before an abort; a successful run always feeds every chip, and an aborted run returns an error, never bytes
		select {
		case jobs <- i:
		case <-runCtx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	// A parent cancellation that fired before any chip failed still has
	// to surface as an error.
	errOnce.Do(func() { firstErr = ctx.Err() })
	if firstErr != nil {
		return nil, firstErr
	}

	var raw []*sim.Result
	for i := 0; i < chips; i++ {
		pr.Results = append(pr.Results, results[i])
		raw = append(raw, results[i].res)
	}
	sum, err := metrics.Summarize(raw, s.Ambient(), 21)
	if err != nil {
		return nil, err
	}
	pr.summary = sum
	pr.TotalDTMEvents = sum.TotalDTMEvents
	pr.MeanTempOverAmbient = sum.MeanTempOverAmbient
	pr.ChipFMaxAging = sum.ChipFMaxAgingRate
	pr.AvgFMaxAging = sum.AvgFMaxAgingRate
	pr.Years = append([]float64(nil), sum.Years...)
	pr.AvgFMaxSeries = append([]float64(nil), sum.AvgFMaxSeries...)
	return pr, nil
}

// loadChipResult restores a persisted chip result, rejecting blobs whose
// seed or policy disagree (a stale store never corrupts the population).
func loadChipResult(store ChipResultStore, seed int64, p Policy) (*LifetimeResult, bool) {
	if store == nil {
		return nil, false
	}
	data, ok := store.Load(seed)
	if !ok {
		return nil, false
	}
	var res sim.Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, false
	}
	if res.ChipSeed != seed || res.Policy != p.String() || len(res.Records) == 0 {
		return nil, false
	}
	return wrapResult(&res), true
}

// saveChipResult persists a finished chip result; failures are dropped
// (the store is an optimisation, not a correctness dependency).
func saveChipResult(store ChipResultStore, seed int64, res *LifetimeResult) {
	if store == nil {
		return
	}
	data, err := json.Marshal(res.res)
	if err != nil {
		return
	}
	_ = store.Save(seed, data)
}

// ChipJSON serialises the chip's raw simulation result — the exact blob a
// ChipResultStore holds and ValidateChipJSON accepts. It is the canonical
// result encoding of a single-chip ("chip" kind) service job, which is
// how population chips fan out across hayatd peers: the bytes a peer
// returns feed the coordinator's store and round-trip exactly, so a
// distributed population is byte-identical to a local one.
func (r *LifetimeResult) ChipJSON() ([]byte, error) {
	if r.res == nil {
		return nil, fmt.Errorf("hayat: result carries no raw simulation data")
	}
	return json.Marshal(r.res)
}

// ValidateChipJSON checks that data is a usable chip blob for the given
// seed and canonical policy name — the same acceptance rule a resuming
// population run applies, exported so a node can vet bytes fetched from
// a peer before trusting them.
func ValidateChipJSON(data []byte, seed int64, policy string) error {
	var res sim.Result
	if err := json.Unmarshal(data, &res); err != nil {
		return fmt.Errorf("hayat: chip blob: %w", err)
	}
	if res.ChipSeed != seed {
		return fmt.Errorf("hayat: chip blob is for seed %d, want %d", res.ChipSeed, seed)
	}
	if res.Policy != policy {
		return fmt.Errorf("hayat: chip blob is for policy %q, want %q", res.Policy, policy)
	}
	if len(res.Records) == 0 {
		return fmt.Errorf("hayat: chip blob has no epoch records")
	}
	return nil
}

// Comparison holds Hayat-vs-baseline ratios; values below 1 favour Hayat
// (these are the normalised bars of Figs. 7–10).
type Comparison struct {
	DarkFraction         float64
	DTMEventsRatio       float64
	TempOverAmbientRatio float64
	ChipFMaxAgingRatio   float64
	AvgFMaxAgingRatio    float64
}

// Compare normalises a Hayat population against its VAA counterpart.
func Compare(hayatRes, vaaRes *PopulationResult) (Comparison, error) {
	c, err := metrics.Compare(hayatRes.summary, vaaRes.summary)
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{
		DarkFraction:         c.DarkFraction,
		DTMEventsRatio:       c.DTMEventsRatio,
		TempOverAmbientRatio: c.TempOverAmbientRatio,
		ChipFMaxAgingRatio:   c.ChipFMaxAgingRatio,
		AvgFMaxAgingRatio:    c.AvgFMaxAgingRatio,
	}, nil
}

// LifetimeExtension computes Fig. 11's headline number: by how many years
// the candidate population outlives the baseline at a required lifetime —
// the baseline's average frequency after requiredYears defines end-of-life,
// and the returned extension is how much later the candidate reaches it.
func LifetimeExtension(candidate, baselineRes *PopulationResult, requiredYears float64) (extensionYears, thresholdHz float64) {
	return metrics.LifetimeExtension(candidate.summary, baselineRes.summary, requiredYears)
}

// WriteJSON serialises the full lifetime result (per-core arrays and every
// epoch record) as indented JSON.
func (r *LifetimeResult) WriteJSON(w io.Writer) error {
	return persist.SaveResult(w, r.res)
}

// WriteJSON serialises the population result — the aggregates of
// Figs. 7–11 plus every per-chip lifetime record — as indented JSON.
func (pr *PopulationResult) WriteJSON(w io.Writer) error {
	raw := make([]*sim.Result, len(pr.Results))
	for i, r := range pr.Results {
		raw[i] = r.res
	}
	var baseSeed int64
	if len(raw) > 0 {
		baseSeed = raw[0].ChipSeed
	}
	return persist.SavePopulation(w, persist.NewPopulationRecord(baseSeed, raw, pr.summary))
}
