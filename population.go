package hayat

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"github.com/kit-ces/hayat/internal/metrics"
	"github.com/kit-ces/hayat/internal/persist"
	"github.com/kit-ces/hayat/internal/sim"
)

// PopulationResult aggregates one policy's lifetime results over a chip
// population — the "25 different chips" of Figs. 7–11.
type PopulationResult struct {
	Policy       string
	DarkFraction float64
	Chips        int
	Results      []*LifetimeResult

	// TotalDTMEvents across the population (Fig. 7's quantity).
	TotalDTMEvents int
	// MeanTempOverAmbient is the population mean lifetime-average
	// temperature rise over ambient in Kelvin (Fig. 8).
	MeanTempOverAmbient float64
	// ChipFMaxAging is the mean degradation of the single fastest core's
	// frequency in Hz over the lifetime (Fig. 9).
	ChipFMaxAging float64
	// AvgFMaxAging is the mean degradation of the chip-average frequency
	// in Hz over the lifetime (Fig. 10).
	AvgFMaxAging float64
	// Years/AvgFMaxSeries trace the population-average frequency over the
	// lifetime (Fig. 11 right).
	Years         []float64
	AvgFMaxSeries []float64

	summary metrics.Summary
}

// RunPopulation simulates `chips` dies (seeds baseSeed, baseSeed+1, …)
// under the given policy and aggregates the results. Chips are
// independent, so they run on parallel workers (up to GOMAXPROCS); the
// aggregated result is deterministic regardless of scheduling because
// results are collected in seed order.
func (s *System) RunPopulation(baseSeed int64, chips int, p Policy) (*PopulationResult, error) {
	if chips <= 0 {
		return nil, fmt.Errorf("hayat: population size must be positive, got %d", chips)
	}
	pr := &PopulationResult{Policy: p.String(), DarkFraction: s.cfg.DarkFraction, Chips: chips}

	results := make([]*LifetimeResult, chips)
	errs := make([]error, chips)
	workers := runtime.GOMAXPROCS(0)
	if workers > chips {
		workers = chips
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				chip, err := s.NewChip(baseSeed + int64(i))
				if err != nil {
					errs[i] = err
					continue
				}
				results[i], errs[i] = chip.RunLifetime(p)
			}
		}()
	}
	for i := 0; i < chips; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	var raw []*sim.Result
	for i := 0; i < chips; i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
		pr.Results = append(pr.Results, results[i])
		raw = append(raw, results[i].res)
	}
	sum, err := metrics.Summarize(raw, s.Ambient(), 21)
	if err != nil {
		return nil, err
	}
	pr.summary = sum
	pr.TotalDTMEvents = sum.TotalDTMEvents
	pr.MeanTempOverAmbient = sum.MeanTempOverAmbient
	pr.ChipFMaxAging = sum.ChipFMaxAgingRate
	pr.AvgFMaxAging = sum.AvgFMaxAgingRate
	pr.Years = append([]float64(nil), sum.Years...)
	pr.AvgFMaxSeries = append([]float64(nil), sum.AvgFMaxSeries...)
	return pr, nil
}

// Comparison holds Hayat-vs-baseline ratios; values below 1 favour Hayat
// (these are the normalised bars of Figs. 7–10).
type Comparison struct {
	DarkFraction         float64
	DTMEventsRatio       float64
	TempOverAmbientRatio float64
	ChipFMaxAgingRatio   float64
	AvgFMaxAgingRatio    float64
}

// Compare normalises a Hayat population against its VAA counterpart.
func Compare(hayatRes, vaaRes *PopulationResult) (Comparison, error) {
	c, err := metrics.Compare(hayatRes.summary, vaaRes.summary)
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{
		DarkFraction:         c.DarkFraction,
		DTMEventsRatio:       c.DTMEventsRatio,
		TempOverAmbientRatio: c.TempOverAmbientRatio,
		ChipFMaxAgingRatio:   c.ChipFMaxAgingRatio,
		AvgFMaxAgingRatio:    c.AvgFMaxAgingRatio,
	}, nil
}

// LifetimeExtension computes Fig. 11's headline number: by how many years
// the candidate population outlives the baseline at a required lifetime —
// the baseline's average frequency after requiredYears defines end-of-life,
// and the returned extension is how much later the candidate reaches it.
func LifetimeExtension(candidate, baselineRes *PopulationResult, requiredYears float64) (extensionYears, thresholdHz float64) {
	return metrics.LifetimeExtension(candidate.summary, baselineRes.summary, requiredYears)
}

// WriteJSON serialises the full lifetime result (per-core arrays and every
// epoch record) as indented JSON.
func (r *LifetimeResult) WriteJSON(w io.Writer) error {
	return persist.SaveResult(w, r.res)
}
