package hayat

import (
	"math"
	"strings"
	"testing"
)

// fastConfig shrinks the experiment for unit tests.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Years = 1
	cfg.WindowSeconds = 1.0
	return cfg
}

func TestPolicyString(t *testing.T) {
	if PolicyHayat.String() != "Hayat" || PolicyVAA.String() != "VAA" {
		t.Fatal("policy names wrong")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Fatal("unknown policy formatting")
	}
}

func TestNewSystemValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Rows = 0 },
		func(c *Config) { c.Cols = -1 },
		func(c *Config) { c.DarkFraction = 1.2 },
		func(c *Config) { c.Years = 0 },
		func(c *Config) { c.DutyMode = "sometimes" },
		func(c *Config) { c.TSafe = -5 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if _, err := NewSystem(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSystemAndChipBasics(t *testing.T) {
	sys, err := NewSystem(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sys.Cores() != 64 {
		t.Fatalf("Cores = %d", sys.Cores())
	}
	if sys.Ambient() < 300 || sys.Ambient() > 330 {
		t.Fatalf("Ambient = %v", sys.Ambient())
	}
	chip, err := sys.NewChip(42)
	if err != nil {
		t.Fatal(err)
	}
	if chip.Seed() != 42 {
		t.Fatalf("Seed = %d", chip.Seed())
	}
	f := chip.InitialFrequencies()
	if len(f) != 64 {
		t.Fatalf("len(freqs) = %d", len(f))
	}
	for i, v := range f {
		if v < 1.5e9 || v > 4.5e9 {
			t.Fatalf("core %d frequency %v implausible", i, v)
		}
	}
	if lf := chip.LeakageFactors(); len(lf) != 64 {
		t.Fatalf("len(leak) = %d", len(lf))
	}
	if sp := chip.FrequencySpread(); sp < 0.1 || sp > 0.6 {
		t.Fatalf("FrequencySpread = %v", sp)
	}
	// Accessors return copies.
	f[0] = 0
	if chip.InitialFrequencies()[0] == 0 {
		t.Fatal("InitialFrequencies returned shared storage")
	}
}

func TestRunLifetimePublicAPI(t *testing.T) {
	sys, err := NewSystem(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	chip, err := sys.NewChip(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Policy{PolicyHayat, PolicyVAA} {
		res, err := chip.RunLifetime(p)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.Policy != p.String() || res.ChipSeed != 1 {
			t.Fatalf("result meta: %+v", res)
		}
		if len(res.Epochs) != 4 {
			t.Fatalf("%v: %d epochs", p, len(res.Epochs))
		}
		if res.DTMEvents() != res.DTMMigrations+res.DTMThrottles {
			t.Fatal("DTM accounting inconsistent")
		}
		f0 := res.AverageFrequencyAt(0)
		f1 := res.AverageFrequencyAt(1)
		if f1 >= f0 {
			t.Fatalf("%v: no aging (%v → %v)", p, f0, f1)
		}
		for i := range res.FinalHealth {
			if res.FinalHealth[i] <= 0 || res.FinalHealth[i] > 1 {
				t.Fatalf("health[%d] = %v", i, res.FinalHealth[i])
			}
		}
	}
	if _, err := chip.RunLifetime(Policy(77)); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestRunPopulationAndCompare(t *testing.T) {
	sys, err := NewSystem(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.RunPopulation(100, 2, PolicyHayat)
	if err != nil {
		t.Fatal(err)
	}
	v, err := sys.RunPopulation(100, 2, PolicyVAA)
	if err != nil {
		t.Fatal(err)
	}
	if h.Chips != 2 || len(h.Results) != 2 {
		t.Fatalf("population meta: %+v", h)
	}
	if len(h.Years) != len(h.AvgFMaxSeries) || len(h.Years) < 2 {
		t.Fatal("series malformed")
	}
	// Series non-increasing.
	for i := 1; i < len(h.AvgFMaxSeries); i++ {
		if h.AvgFMaxSeries[i] > h.AvgFMaxSeries[i-1]+1 {
			t.Fatal("series increases")
		}
	}
	c, err := Compare(h, v)
	if err != nil {
		t.Fatal(err)
	}
	if c.DarkFraction != sys.Config().DarkFraction {
		t.Fatalf("comparison dark fraction %v", c.DarkFraction)
	}
	if c.TempOverAmbientRatio <= 0 {
		t.Fatalf("temp ratio %v", c.TempOverAmbientRatio)
	}
	ext, thr := LifetimeExtension(h, v, 0.5)
	if thr <= 0 {
		t.Fatalf("threshold %v", thr)
	}
	if math.IsNaN(ext) {
		t.Fatal("extension NaN")
	}
	if _, err := sys.RunPopulation(1, 0, PolicyHayat); err == nil {
		t.Fatal("zero-chip population accepted")
	}
}

func TestRenderHelpers(t *testing.T) {
	sys, err := NewSystem(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = float64(i)
	}
	hm := sys.RenderHeatMap(vals, 0, 0)
	if lines := strings.Count(hm, "\n"); lines != 8 {
		t.Fatalf("heat map has %d lines", lines)
	}
	nm := sys.RenderNumericMap(vals, "%2.0f")
	if !strings.Contains(nm, "63") {
		t.Fatal("numeric map missing values")
	}
}

func TestDeterministicAcrossSystems(t *testing.T) {
	run := func() float64 {
		sys, err := NewSystem(fastConfig())
		if err != nil {
			t.Fatal(err)
		}
		chip, err := sys.NewChip(5)
		if err != nil {
			t.Fatal(err)
		}
		res, err := chip.RunLifetime(PolicyHayat)
		if err != nil {
			t.Fatal(err)
		}
		return res.AverageFrequencyAt(1)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

func TestAgingModelSelection(t *testing.T) {
	cfg := fastConfig()
	cfg.AgingModel = "nbti+hci"
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	chip, err := sys.NewChip(1)
	if err != nil {
		t.Fatal(err)
	}
	resHCI, err := chip.RunLifetime(PolicyHayat)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: NBTI only.
	cfg.AgingModel = "nbti"
	sys2, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	chip2, err := sys2.NewChip(1)
	if err != nil {
		t.Fatal(err)
	}
	resNBTI, err := chip2.RunLifetime(PolicyHayat)
	if err != nil {
		t.Fatal(err)
	}
	// The composite model must age the chip strictly faster.
	if resHCI.AverageFrequencyAt(1) >= resNBTI.AverageFrequencyAt(1) {
		t.Fatalf("HCI composite (%v) not faster-aging than NBTI-only (%v)",
			resHCI.AverageFrequencyAt(1), resNBTI.AverageFrequencyAt(1))
	}
	// Unknown model rejected at system construction.
	cfg.AgingModel = "magic"
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("unknown aging model accepted")
	}
}

func TestFreqLadderPublicAPI(t *testing.T) {
	cfg := fastConfig()
	cfg.FreqLadderGHz = []float64{1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	chip, err := sys.NewChip(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := chip.RunLifetime(PolicyHayat)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs[0].Mapped == 0 {
		t.Fatal("nothing mapped under frequency ladder")
	}
	// Descending ladder must be rejected.
	cfg.FreqLadderGHz = []float64{3, 2}
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("descending ladder accepted")
	}
}

func TestCheckpointedLifetimePublicAPI(t *testing.T) {
	cfg := fastConfig()
	cfg.RemixEpochs = 2
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	chip, err := sys.NewChip(1)
	if err != nil {
		t.Fatal(err)
	}
	full, err := chip.RunLifetime(PolicyHayat)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := chip.RunLifetimeCheckpointed(PolicyHayat, 2, &buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := chip.ResumeLifetime(PolicyHayat, strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.Epochs) != len(full.Epochs) {
		t.Fatalf("epoch counts differ: %d vs %d", len(resumed.Epochs), len(full.Epochs))
	}
	for i := range full.Epochs {
		if resumed.Epochs[i] != full.Epochs[i] {
			t.Fatalf("epoch %d differs after resume", i)
		}
	}
	// Wrong policy on resume is rejected.
	if _, err := chip.ResumeLifetime(PolicyVAA, strings.NewReader(buf.String())); err == nil {
		t.Fatal("cross-policy resume accepted")
	}
}

func TestLifetimeResultWriteJSON(t *testing.T) {
	sys, err := NewSystem(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	chip, err := sys.NewChip(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := chip.RunLifetime(PolicyVAA)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"policy": "VAA"`, `"epochs"`, `"final_health"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON missing %q", want)
		}
	}
}
