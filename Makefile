# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; keep the two in sync.

GO ?= go

.PHONY: build test race lint lint-fixtures lint-selftest fuzz-smoke fmt bench bench-submit drill-cluster drill-replication

build:
	$(GO) build ./...

# -vet=all mirrors CI: every vet analyzer runs over test builds too.
test:
	$(GO) test -vet=all ./...

race:
	$(GO) test -race ./...

# hayatlint enforces the project invariants (see DESIGN.md §9); gofmt -l
# keeps the tree formatted. Both fail the target on any finding.
lint:
	$(GO) run ./cmd/hayatlint ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Golden-fixture suite only: -short skips the whole-module real-tree
# lint, so a rule edit round-trips in seconds.
lint-fixtures:
	$(GO) test -short ./internal/lint

# Negative self-test: inject a reachable time.Now() into internal/sim
# and require hayatlint to reject the tree with a determinism finding.
# A passing lint run here means the taint analysis is dead — fail loudly.
SELFTEST_FILE := internal/sim/zz_lint_selftest_injected.go
lint-selftest:
	@cp internal/lint/testdata/selftest/injected.go.txt $(SELFTEST_FILE); \
	trap 'rm -f $(SELFTEST_FILE)' EXIT; \
	out="$$($(GO) run ./cmd/hayatlint ./... 2>&1)"; status=$$?; \
	if [ $$status -eq 0 ]; then \
		echo "lint-selftest: FAIL — hayatlint accepted an injected time.Now() in internal/sim"; exit 1; \
	fi; \
	if ! echo "$$out" | grep -q '\[determinism\].*time\.Now'; then \
		echo "lint-selftest: FAIL — hayatlint failed without a determinism/time.Now finding:"; echo "$$out"; exit 1; \
	fi; \
	echo "lint-selftest: OK — injected time.Now() rejected:"; \
	echo "$$out" | grep '\[determinism\]'

# Short fuzz pass over every native fuzz target; FUZZTIME=20s matches CI.
FUZZTIME ?= 20s
fuzz-smoke:
	@set -eu; \
	fuzz() { \
		echo "=== $$1 $$2 ==="; \
		$(GO) test "$$1" -run='^$$' -fuzz="^$$2\$$" -fuzztime=$(FUZZTIME); \
	}; \
	fuzz .                    FuzzParsePolicy; \
	fuzz ./internal/persist   FuzzDecodeFrame; \
	fuzz ./internal/persist   FuzzDecodeFrameLine; \
	fuzz ./internal/persist   FuzzLoadChip; \
	fuzz ./internal/persist   FuzzLoadResult; \
	fuzz ./internal/service   FuzzJournalReplay; \
	fuzz ./internal/service   FuzzDecodeConfig; \
	fuzz ./internal/service   FuzzDecodeBatchRequest; \
	fuzz ./internal/cluster   FuzzDecodeJobEnvelope; \
	fuzz ./internal/cluster   FuzzDecodeProbe; \
	fuzz ./internal/cluster   FuzzDecodeBatchEnvelope; \
	fuzz ./internal/store     FuzzDecodeStoreEnvelope; \
	fuzz ./internal/merkle    FuzzVerifyProof; \
	fuzz ./internal/merkle    FuzzParseHash; \
	fuzz ./internal/aging     FuzzTableLookup; \
	fuzz ./internal/aging     FuzzStateAdvance; \
	fuzz ./internal/floorplan FuzzReadFLP; \
	fuzz ./internal/workload  FuzzReadProfileTSV

fmt:
	gofmt -w .

# The kill-a-peer drill: 3 real hayatd nodes, one SIGKILLed while it
# holds unfinished population chips, result still byte-identical with a
# verifying Merkle proof and zero client-visible 5xx.
drill-cluster:
	$(GO) test -race -run '^TestClusterKillPeerDrill$$' -v ./internal/service

# The replicated-store drill: 3 real hayatd nodes, a key's owner
# SIGKILLed after replication, the result still served byte-identical
# from a replica with a verifying Merkle proof and zero client-visible
# 5xx; the restarted owner is read-repaired by the anti-entropy sweep
# and replication debt returns to zero.
drill-replication:
	$(GO) test -race -run '^TestReplicationKillOwnerDrill$$' -v ./internal/service

# Epoch hot-path benchmarks → committed JSON baseline. BENCHTIME=1x gives
# a fast smoke run (CI); raise it (e.g. 2s) for a stable local baseline.
# BENCH_OUT restarts the committed trajectory at the current PR;
# BENCH_BASELINE feeds the previous PR's document to benchjson so the new
# file carries speedups_vs_baseline. BENCH_GOMAXPROCS≥2 is forced so the
# workers=N sub-benchmarks measure real parallel dispatch even on
# single-core CI runners (determinism is worker-count independent; only
# the wall clock moves).
BENCHTIME ?= 2s
BENCH_OUT ?= BENCH_PR10.json
BENCH_BASELINE ?= BENCH_PR9.json
BENCH_GOMAXPROCS ?= 2
bench:
	{ GOMAXPROCS=$(BENCH_GOMAXPROCS) $(GO) test ./internal/sim -run '^$$' \
		-bench 'BenchmarkSingleChipEpoch' -benchmem -benchtime $(BENCHTIME); \
	  GOMAXPROCS=$(BENCH_GOMAXPROCS) $(GO) test ./internal/thermal -run '^$$' \
		-bench 'BenchmarkGridSteadyState' -benchmem -benchtime $(BENCHTIME); } \
		| GOMAXPROCS=$(BENCH_GOMAXPROCS) $(GO) run ./cmd/benchjson -baseline $(BENCH_BASELINE) > $(BENCH_OUT)
	@cat $(BENCH_OUT)

# Batch-vs-single submit throughput → committed JSON baseline. A fixed
# iteration count (not wall time) bounds how many jobs pile into the
# parked queue; speedups_vs_single in the output is the batch win.
SUBMIT_BENCHTIME ?= 30x
bench-submit:
	$(GO) test ./internal/service -run '^$$' -bench 'BenchmarkSubmitThroughput' \
		-benchtime $(SUBMIT_BENCHTIME) | $(GO) run ./cmd/benchjson > BENCH_PR6.json
	@cat BENCH_PR6.json
