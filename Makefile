# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; keep the two in sync.

GO ?= go

.PHONY: build test race lint fuzz-smoke fmt bench bench-submit drill-cluster drill-replication

build:
	$(GO) build ./...

# -vet=all mirrors CI: every vet analyzer runs over test builds too.
test:
	$(GO) test -vet=all ./...

race:
	$(GO) test -race ./...

# hayatlint enforces the project invariants (see DESIGN.md §9); gofmt -l
# keeps the tree formatted. Both fail the target on any finding.
lint:
	$(GO) run ./cmd/hayatlint ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Short fuzz pass over every native fuzz target; FUZZTIME=20s matches CI.
FUZZTIME ?= 20s
fuzz-smoke:
	@set -eu; \
	fuzz() { \
		echo "=== $$1 $$2 ==="; \
		$(GO) test "$$1" -run='^$$' -fuzz="^$$2\$$" -fuzztime=$(FUZZTIME); \
	}; \
	fuzz .                    FuzzParsePolicy; \
	fuzz ./internal/persist   FuzzDecodeFrame; \
	fuzz ./internal/persist   FuzzDecodeFrameLine; \
	fuzz ./internal/persist   FuzzLoadChip; \
	fuzz ./internal/persist   FuzzLoadResult; \
	fuzz ./internal/service   FuzzJournalReplay; \
	fuzz ./internal/service   FuzzDecodeConfig; \
	fuzz ./internal/service   FuzzDecodeBatchRequest; \
	fuzz ./internal/cluster   FuzzDecodeJobEnvelope; \
	fuzz ./internal/cluster   FuzzDecodeProbe; \
	fuzz ./internal/cluster   FuzzDecodeBatchEnvelope; \
	fuzz ./internal/store     FuzzDecodeStoreEnvelope; \
	fuzz ./internal/merkle    FuzzVerifyProof; \
	fuzz ./internal/merkle    FuzzParseHash; \
	fuzz ./internal/aging     FuzzTableLookup; \
	fuzz ./internal/aging     FuzzStateAdvance; \
	fuzz ./internal/floorplan FuzzReadFLP; \
	fuzz ./internal/workload  FuzzReadProfileTSV

fmt:
	gofmt -w .

# The kill-a-peer drill: 3 real hayatd nodes, one SIGKILLed while it
# holds unfinished population chips, result still byte-identical with a
# verifying Merkle proof and zero client-visible 5xx.
drill-cluster:
	$(GO) test -race -run '^TestClusterKillPeerDrill$$' -v ./internal/service

# The replicated-store drill: 3 real hayatd nodes, a key's owner
# SIGKILLed after replication, the result still served byte-identical
# from a replica with a verifying Merkle proof and zero client-visible
# 5xx; the restarted owner is read-repaired by the anti-entropy sweep
# and replication debt returns to zero.
drill-replication:
	$(GO) test -race -run '^TestReplicationKillOwnerDrill$$' -v ./internal/service

# Epoch hot-path benchmarks → committed JSON baseline. BENCHTIME=1x gives
# a fast smoke run (CI); raise it (e.g. 2s) for a stable local baseline.
BENCHTIME ?= 2s
bench:
	$(GO) test ./internal/sim -run '^$$' -bench 'BenchmarkSingleChipEpoch' \
		-benchmem -benchtime $(BENCHTIME) | $(GO) run ./cmd/benchjson > BENCH_PR5.json
	@cat BENCH_PR5.json

# Batch-vs-single submit throughput → committed JSON baseline. A fixed
# iteration count (not wall time) bounds how many jobs pile into the
# parked queue; speedups_vs_single in the output is the batch win.
SUBMIT_BENCHTIME ?= 30x
bench-submit:
	$(GO) test ./internal/service -run '^$$' -bench 'BenchmarkSubmitThroughput' \
		-benchtime $(SUBMIT_BENCHTIME) | $(GO) run ./cmd/benchjson > BENCH_PR6.json
	@cat BENCH_PR6.json
