# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; keep the two in sync.

GO ?= go

.PHONY: build test race lint fuzz-smoke fmt bench

build:
	$(GO) build ./...

# -vet=all mirrors CI: every vet analyzer runs over test builds too.
test:
	$(GO) test -vet=all ./...

race:
	$(GO) test -race ./...

# hayatlint enforces the project invariants (see DESIGN.md §9); gofmt -l
# keeps the tree formatted. Both fail the target on any finding.
lint:
	$(GO) run ./cmd/hayatlint ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Short fuzz pass over every native fuzz target; FUZZTIME=20s matches CI.
FUZZTIME ?= 20s
fuzz-smoke:
	@set -eu; \
	fuzz() { \
		echo "=== $$1 $$2 ==="; \
		$(GO) test "$$1" -run='^$$' -fuzz="^$$2\$$" -fuzztime=$(FUZZTIME); \
	}; \
	fuzz .                    FuzzParsePolicy; \
	fuzz ./internal/persist   FuzzDecodeFrame; \
	fuzz ./internal/persist   FuzzDecodeFrameLine; \
	fuzz ./internal/persist   FuzzLoadChip; \
	fuzz ./internal/persist   FuzzLoadResult; \
	fuzz ./internal/service   FuzzJournalReplay; \
	fuzz ./internal/service   FuzzDecodeConfig; \
	fuzz ./internal/aging     FuzzTableLookup; \
	fuzz ./internal/aging     FuzzStateAdvance; \
	fuzz ./internal/floorplan FuzzReadFLP; \
	fuzz ./internal/workload  FuzzReadProfileTSV

fmt:
	gofmt -w .

# Epoch hot-path benchmarks → committed JSON baseline. BENCHTIME=1x gives
# a fast smoke run (CI); raise it (e.g. 2s) for a stable local baseline.
BENCHTIME ?= 2s
bench:
	$(GO) test ./internal/sim -run '^$$' -bench 'BenchmarkSingleChipEpoch' \
		-benchmem -benchtime $(BENCHTIME) | $(GO) run ./cmd/benchjson > BENCH_PR5.json
	@cat BENCH_PR5.json
