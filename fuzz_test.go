package hayat

import "testing"

// FuzzParsePolicy throws arbitrary strings at the policy parser: it must
// never panic, and any accepted policy must round-trip through its
// canonical String() spelling (the service uses that spelling as part of
// the cache key, so the round-trip is a correctness property, not just
// hygiene).
func FuzzParsePolicy(f *testing.F) {
	f.Add("hayat")
	f.Add("VAA")
	f.Add("  Hayat \t")
	f.Add("")
	f.Add("greedy")
	f.Add("hayat\x00")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePolicy(s)
		if err != nil {
			return
		}
		again, err := ParsePolicy(p.String())
		if err != nil {
			t.Fatalf("canonical spelling %q of accepted policy does not reparse: %v", p, err)
		}
		if again != p {
			t.Fatalf("round-trip changed policy: %v → %v", p, again)
		}
	})
}
